"""Tests for the analysis helpers: tables, metrics, figures, experiments."""

from __future__ import annotations

import math
import os
import random

import pytest

from repro.analysis import experiments as E
from repro.analysis.figures import (
    render_anchor_dependencies,
    render_cleaning_cases,
    render_layering,
    render_petals_example,
)
from repro.analysis.metrics import geometric_mean, power_law_fit
from repro.analysis.tables import format_table, write_report
from repro.core.instance import TAPInstance
from repro.core.tap import solve_virtual_tap
from repro.decomp.layering import Layering
from repro.decomp.petals import PetalOracle
from repro.trees.rooted import RootedTree

from conftest import random_tree


class TestTables:
    def test_format_alignment(self):
        rows = [
            {"a": 1, "b": 2.34567, "c": "x"},
            {"a": 100, "b": float("inf"), "c": "yy"},
        ]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "2.346" in table
        assert "inf" in table
        # all data rows align with the header width
        assert len(set(len(l) for l in lines[1:3])) <= 2

    def test_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_write_report(self, tmp_path):
        path = write_report("unit_test_report", "hello\n", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read() == "hello\n"


class TestMetrics:
    def test_power_law_recovers_exponent(self):
        xs = [10, 100, 1000, 10000]
        for b_true in (0.5, 1.0, 2.0):
            ys = [3.0 * x**b_true for x in xs]
            a, b = power_law_fit(xs, ys)
            assert b == pytest.approx(b_true, abs=1e-9)
            assert a == pytest.approx(3.0, rel=1e-9)

    def test_power_law_with_noise(self):
        rng = random.Random(1)
        xs = [2**k for k in range(4, 14)]
        ys = [5.0 * x**0.5 * rng.uniform(0.9, 1.1) for x in xs]
        _, b = power_law_fit(xs, ys)
        assert 0.4 <= b <= 0.6

    def test_power_law_errors(self):
        with pytest.raises(ValueError):
            power_law_fit([1], [1])
        with pytest.raises(ValueError):
            power_law_fit([1, -1], [1, 1])
        with pytest.raises(ValueError):
            power_law_fit([2, 2], [1, 3])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestFigures:
    def _stress(self):
        rng = random.Random(12)
        n = 80
        tree = RootedTree([-1] + [v - 1 for v in range(1, n)], 0)
        links = [
            (dec, rng.randrange(0, dec), rng.uniform(1, 100))
            for dec in (rng.randrange(1, n) for _ in range(160))
        ]
        links.append((n - 1, 0, 500.0))
        inst = TAPInstance.from_links(tree, links, segment_size=4)
        fwd, rev = solve_virtual_tap(inst, eps=0.2, variant="improved")
        return inst, fwd, rev

    def test_render_layering(self):
        t = random_tree(20, seed=1)
        text = render_layering(t, Layering(t))
        assert "(root)" in text
        assert text.count("[layer") == t.n - 1

    def test_render_petals(self):
        t = random_tree(15, seed=2, shape="path")
        inst = TAPInstance.from_links(t, [(14, 0, 1.0), (10, 3, 1.0)])
        oracle = PetalOracle(inst.ops, inst.layering, [e.pair for e in inst.edges])
        text = render_petals_example(
            inst, 7, [0, 1], oracle.higher(7), oracle.lower(7)
        )
        assert "higher petal" in text
        assert "lower petal" in text

    def test_render_dependencies_and_cleaning(self):
        inst, fwd, rev = self._stress()
        dep_text = render_anchor_dependencies(inst, rev)
        clean_text = render_cleaning_cases(inst, fwd, rev)
        assert "dependent anchor pairs found:" in dep_text
        assert "cleaning removals:" in clean_text
        assert "cleaning removals: 0" not in clean_text  # seed 12 fires


class TestExperimentRunners:
    """Smoke-run each experiment with tiny parameters."""

    def test_e01(self):
        rows = E.e01_tecss_approx(families=("cycle_chords",), n_small=10, n_large=30, seeds=(1,))
        assert all(r["within"] for r in rows)

    def test_e02(self):
        rows = E.e02_round_complexity(families=("grid",), sizes=(36, 64))
        assert all(r["modeled_rounds"] <= r["thm11_bound"] for r in rows)

    def test_e03(self):
        rows = E.e03_tap_approx(sizes=(40,), seeds=(1,))
        assert all(r["within"] for r in rows)

    def test_e04(self):
        rows = E.e04_ablation(sizes=(60,), seeds=(1,))
        assert all(r["maxcov_improved(<=2)"] <= 2 for r in rows)

    def test_e05(self):
        rows = E.e05_layering(families=("grid",), sizes=(49,))
        assert all(r["layers"] <= r["log2_leaves"] + 2 for r in rows)

    def test_e06(self):
        rows = E.e06_unweighted(sizes=(12,), seeds=(1,))
        assert all(r["within_2"] for r in rows)

    def test_e07(self):
        rows = E.e07_shortcut_quality(n=64, families=("grid",))
        assert rows[0]["tree-restricted:a+b"] > 0

    def test_e08(self):
        rows = E.e08_shortcut_tools(sizes=(49,))
        assert rows[0]["correct"]

    def test_e09(self):
        rows = E.e09_subroutines(n=30, trials=5)
        assert rows[0]["xor_false_positive"] == 0

    def test_e10(self):
        rows = E.e10_forward_iterations(n=50, eps_values=(0.5,), seeds=(1,))
        assert rows[0]["dual_ok(<=1+eps)"]

    def test_e11(self):
        rows = E.e11_segments(sizes=(64,), families=("grid",))
        assert rows[0]["segments/sqrt_n"] <= 4

    def test_e12(self):
        rows = E.e12_comparison(n=60, seeds=(1,))
        assert rows[0]["h_MST"] >= 20
