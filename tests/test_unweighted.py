"""Tests for the unweighted TAP 2-approximation (Section 3.6.1)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.unweighted import unweighted_tap
from repro.graphs import is_two_edge_connected

from conftest import TREE_SHAPES, random_tap_links, random_tree


def links_unweighted(tree, m, seed):
    return [(u, v) for u, v, _ in random_tap_links(tree, m, seed=seed, unweighted=True)]


@pytest.mark.parametrize("shape", TREE_SHAPES)
class TestUnweightedTap:
    def test_valid_augmentation(self, shape):
        # Path coverage (not simple-graph bridges: links parallel to tree
        # edges are legitimate in TAP).
        tree = random_tree(50, seed=1, shape=shape)
        links = links_unweighted(tree, 100, seed=2)
        res = unweighted_tap(tree, links)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())

    def test_two_approx_certificate(self, shape):
        # |aug'| <= 2 |MIS| and |MIS| <= OPT' — the Section 3.6.1 argument.
        tree = random_tree(50, seed=3, shape=shape)
        links = links_unweighted(tree, 100, seed=4)
        res = unweighted_tap(tree, links)
        assert res.virtual_size <= 2 * len(res.mis)
        assert res.certified_virtual_ratio <= 2.0 + 1e-9

    def test_mis_members_span_layers(self, shape):
        tree = random_tree(60, seed=5, shape=shape)
        links = links_unweighted(tree, 120, seed=6)
        res = unweighted_tap(tree, links)
        assert len(res.mis) >= 1
        assert res.num_layers >= 1


def test_cycle_needs_one_link():
    # A path tree plus the closing link: MIS = 1 edge, augmentation = 1 link.
    tree = random_tree(12, shape="path")
    res = unweighted_tap(tree, [(11, 0)])
    assert res.links == [(11, 0)]
    assert len(res.mis) == 1


def test_star_needs_matching():
    # Star with a perfect matching of the leaves.  On the *virtual* graph
    # each link splits at the root into two single-edge virtual links, so
    # all 6 leaf edges are pairwise independent: |MIS| = OPT' = 6, and the
    # mapped-back solution is the 3 matching links.
    tree = random_tree(7, shape="star")  # leaves 1..6
    links = [(1, 2), (3, 4), (5, 6)]
    res = unweighted_tap(tree, links)
    assert sorted(res.links) == [(1, 2), (3, 4), (5, 6)]
    assert len(res.mis) == 6
    assert res.certified_virtual_ratio == pytest.approx(1.0)


def test_infeasible_raises():
    from repro.exceptions import NotTwoEdgeConnectedError

    tree = random_tree(6, shape="path")
    with pytest.raises(NotTwoEdgeConnectedError):
        unweighted_tap(tree, [(5, 3)])
