"""The documentation layer is part of the contract: keep it checkable.

Runs the same checks as the CI docs job (``tools/check_docs.py``)
in-process, and pins the acceptance-level facts: the two docs files
exist, are linked from the README, and the benchmark artifact schema is
what CI uploads.
"""

from __future__ import annotations

import importlib.util
import json
import os

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(REPO, "tools", "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_linked_from_readme() -> None:
    for name in ("ARCHITECTURE.md", "PAPER_MAP.md"):
        assert os.path.exists(os.path.join(REPO, "docs", name)), name
    with open(os.path.join(REPO, "README.md")) as fh:
        readme = fh.read()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/PAPER_MAP.md" in readme


def test_doc_links_resolve() -> None:
    checker = _load_checker()
    assert checker.check_links(REPO) == []


def test_docstring_presence() -> None:
    checker = _load_checker()
    assert checker.check_docstrings(REPO) == []


def test_bench_artifact_schema() -> None:
    path = os.path.join(REPO, "BENCH_tap_backends.json")
    assert os.path.exists(path), "run benchmarks/bench_tap_backends.py"
    with open(path) as fh:
        record = json.load(fh)
    assert record["benchmark"] == "tap_backends"
    assert record["instance"]["n"] == 2000
    raw = record["results"]["raw"]
    assert raw["speedup"] >= 5.0, "the >=5x acceptance gate"
    assert raw["reference_s"] > raw["fast_s"] > 0
