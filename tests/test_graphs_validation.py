"""Error-path coverage for ``repro.graphs.validation``.

The serving layer funnels untrusted payloads through these checks (via
:class:`repro.runtime.handle.GraphHandle`), so every rejection branch —
disconnected inputs, bridges, self-loops, missing/invalid weights — needs
explicit coverage, plus the duplicate-edge rejection that the wire
protocol adds on top (``nx.Graph`` silently collapses duplicates).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import (
    GraphFormatError,
    NotConnectedError,
    NotTwoEdgeConnectedError,
)
from repro.graphs.validation import (
    check_two_edge_connected,
    ensure_weights,
    find_bridges,
    is_two_edge_connected,
    normalize_graph,
)
from repro.runtime.handle import GraphHandle


def _weighted(edges) -> nx.Graph:
    g = nx.Graph()
    g.add_weighted_edges_from(edges)
    return g


class TestEnsureWeights:
    def test_missing_weight_without_default(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(GraphFormatError, match="no 'weight'"):
            ensure_weights(g)

    def test_missing_weight_filled_by_default(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        ensure_weights(g, default=2.5)
        assert g[0][1]["weight"] == 2.5

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), None])
    def test_invalid_weights(self, bad):
        g = nx.Graph()
        g.add_edge(0, 1, weight=bad)
        if bad is None:
            with pytest.raises(GraphFormatError, match="no 'weight'"):
                ensure_weights(g)
        else:
            with pytest.raises(GraphFormatError, match="invalid weight"):
                ensure_weights(g)

    def test_self_loop(self):
        g = _weighted([(0, 0, 1.0), (0, 1, 1.0)])
        with pytest.raises(GraphFormatError, match="self-loop"):
            ensure_weights(g)


class TestFeasibility:
    def test_disconnected_input(self):
        g = _weighted([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
                       (3, 4, 1.0), (4, 5, 1.0), (5, 3, 1.0)])
        with pytest.raises(NotConnectedError):
            check_two_edge_connected(g)
        assert not is_two_edge_connected(g)

    def test_bridges_only_graph(self):
        # A path: every edge is a bridge; the error names one.
        g = _weighted([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert len(find_bridges(g)) == 3
        with pytest.raises(NotTwoEdgeConnectedError, match="bridge"):
            check_two_edge_connected(g)
        assert not is_two_edge_connected(g)

    def test_single_bridge_in_otherwise_2ec_graph(self):
        # Two triangles joined by one bridge edge.
        g = _weighted([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
                       (3, 4, 1.0), (4, 5, 1.0), (5, 3, 1.0),
                       (2, 3, 1.0)])
        assert find_bridges(g) == [(2, 3)]
        with pytest.raises(NotTwoEdgeConnectedError, match=r"\(2, 3\)"):
            check_two_edge_connected(g)

    def test_too_small_graphs(self):
        with pytest.raises(GraphFormatError, match="at least 2"):
            check_two_edge_connected(nx.Graph())
        single = nx.Graph()
        single.add_node(0)
        assert not is_two_edge_connected(single)
        with pytest.raises(GraphFormatError):
            check_two_edge_connected(single)

    def test_cycle_is_feasible(self):
        g = _weighted([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        check_two_edge_connected(g)  # no raise
        assert is_two_edge_connected(g)
        assert find_bridges(g) == []


class TestNormalizeGraph:
    def test_labels_round_trip_and_attributes_survive(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=1.5, color="red")
        g.add_edge("b", "c", weight=2.0)
        g.add_edge("c", "a", weight=3.0)
        out, nodes, index = normalize_graph(g)
        assert sorted(out.nodes()) == [0, 1, 2]
        assert nodes == ["a", "b", "c"]
        assert index == {"a": 0, "b": 1, "c": 2}
        assert out[0][1]["weight"] == 1.5 and out[0][1]["color"] == "red"


class TestHandleRejections:
    """GraphHandle (the service's entry) raises the same validation errors."""

    def test_disconnected(self):
        g = _weighted([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0),
                       (3, 4, 1.0), (4, 5, 1.0), (5, 3, 1.0)])
        with pytest.raises(NotConnectedError):
            GraphHandle.from_graph(g)

    def test_bridge(self):
        g = _weighted([(0, 1, 1.0), (1, 2, 1.0)])
        with pytest.raises(NotTwoEdgeConnectedError):
            GraphHandle.from_graph(g)

    def test_bad_weight(self):
        g = _weighted([(0, 1, 1.0), (1, 2, -2.0), (2, 0, 1.0)])
        with pytest.raises(GraphFormatError):
            GraphHandle.from_graph(g)


class TestDuplicateEdges:
    """nx.Graph collapses duplicates silently; the wire protocol must not."""

    def test_nx_collapses_duplicates_last_weight_wins(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 0, weight=9.0)  # silently replaces the first
        assert g.number_of_edges() == 1
        assert g[0][1]["weight"] == 9.0

    def test_protocol_rejects_what_nx_would_collapse(self):
        from repro.serve.protocol import ProtocolError, parse_graph_payload

        with pytest.raises(ProtocolError) as excinfo:
            parse_graph_payload(
                {"edges": [[0, 1, 1.0], [1, 2, 1.0], [1, 0, 9.0]]}
            )
        assert excinfo.value.code == "duplicate-edge"
