"""Unit tests for graph generators and validation."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import (
    GraphFormatError,
    NotConnectedError,
    NotTwoEdgeConnectedError,
)
from repro.graphs import generators as gen
from repro.graphs.families import FAMILIES, make_family_instance
from repro.graphs.validation import (
    check_two_edge_connected,
    ensure_weights,
    find_bridges,
    is_two_edge_connected,
    normalize_graph,
)


ALL_GENERATORS = [
    ("cycle_with_chords", lambda: gen.cycle_with_chords(30, 10, seed=1)),
    ("erdos_renyi_2ec", lambda: gen.erdos_renyi_2ec(40, seed=2)),
    ("grid_graph", lambda: gen.grid_graph(5, 6, seed=3)),
    ("torus_graph", lambda: gen.torus_graph(4, 5, seed=4)),
    ("hypercube_graph", lambda: gen.hypercube_graph(4, seed=5)),
    ("ktree_graph", lambda: gen.ktree_graph(25, 3, seed=6)),
    ("theta_graph", lambda: gen.theta_graph(4, 7, seed=7)),
    ("wheel_graph", lambda: gen.wheel_graph(12, seed=8)),
    ("hub_and_cycle", lambda: gen.hub_and_cycle(20, seed=9)),
    ("lollipop_2ec", lambda: gen.lollipop_2ec(5, 15, seed=10)),
    ("broom_graph", lambda: gen.broom_graph(10, 8, seed=11)),
    ("caterpillar_cycle", lambda: gen.caterpillar_cycle(8, 2, seed=12)),
    ("random_geometric_2ec", lambda: gen.random_geometric_2ec(40, seed=13)),
]


@pytest.mark.parametrize("name,builder", ALL_GENERATORS, ids=[n for n, _ in ALL_GENERATORS])
class TestAllGenerators:
    def test_two_edge_connected(self, name, builder):
        g = builder()
        assert is_two_edge_connected(g), f"{name} produced a bridge"

    def test_weights_present_and_positive(self, name, builder):
        g = builder()
        for _, _, data in g.edges(data=True):
            assert data["weight"] > 0

    def test_simple_graph_integer_nodes(self, name, builder):
        g = builder()
        assert not g.is_multigraph()
        assert set(g.nodes()) == set(range(g.number_of_nodes()))

    def test_deterministic(self, name, builder):
        g1, g2 = builder(), builder()
        assert sorted(g1.edges()) == sorted(g2.edges())
        w1 = {tuple(sorted(e)): d["weight"] for *e, d in g1.edges(data=True)}
        w2 = {tuple(sorted(e)): d["weight"] for *e, d in g2.edges(data=True)}
        assert w1 == w2


class TestGeneratorSpecifics:
    def test_hub_and_cycle_diameter_vs_mst_height(self):
        g = gen.hub_and_cycle(40, seed=0)
        assert nx.diameter(g) == 2
        mst = nx.minimum_spanning_tree(g)
        # the MST is dominated by the cheap cycle path: its diameter ~ n
        assert nx.diameter(mst) >= g.number_of_nodes() - 3

    def test_grid_is_planar(self):
        g = gen.grid_graph(5, 5)
        ok, _ = nx.check_planarity(g)
        assert ok

    def test_theta_is_planar(self):
        ok, _ = nx.check_planarity(gen.theta_graph(4, 6))
        assert ok

    def test_weight_styles(self):
        for style in gen.WEIGHT_STYLES:
            g = gen.cycle_with_chords(12, 3, seed=1, weight_style=style)
            weights = [d["weight"] for _, _, d in g.edges(data=True)]
            assert all(w > 0 for w in weights)
            if style == "unit":
                assert set(weights) == {1.0}
            if style == "integer":
                assert all(float(w).is_integer() for w in weights)

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            gen.cycle_with_chords(2)
        with pytest.raises(ValueError):
            gen.grid_graph(1, 5)
        with pytest.raises(ValueError):
            gen.ktree_graph(3, k=1)
        with pytest.raises(ValueError):
            gen.theta_graph(1, 5)
        with pytest.raises(ValueError):
            gen.assign_weights(nx.cycle_graph(3), "bogus")


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_instances(self, family):
        g = make_family_instance(family, 40, seed=1)
        assert is_two_edge_connected(g)
        assert g.number_of_nodes() >= 10

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            make_family_instance("nope", 10)


class TestValidation:
    def test_bridge_detection(self):
        g = nx.cycle_graph(5)
        g.add_edge(0, 10)  # pendant edge = bridge
        assert find_bridges(g) == [(0, 10)]
        assert not is_two_edge_connected(g)
        with pytest.raises(NotTwoEdgeConnectedError):
            check_two_edge_connected(g)

    def test_disconnected(self):
        g = nx.union(nx.cycle_graph(3), nx.cycle_graph(range(10, 13)))
        with pytest.raises(NotConnectedError):
            check_two_edge_connected(g)

    def test_too_small(self):
        with pytest.raises(GraphFormatError):
            check_two_edge_connected(nx.Graph())

    def test_cycle_ok(self):
        check_two_edge_connected(nx.cycle_graph(3))

    def test_ensure_weights_default(self):
        g = nx.cycle_graph(4)
        ensure_weights(g, default=2.0)
        assert all(d["weight"] == 2.0 for _, _, d in g.edges(data=True))

    def test_ensure_weights_missing(self):
        g = nx.cycle_graph(4)
        with pytest.raises(GraphFormatError):
            ensure_weights(g)

    def test_ensure_weights_rejects_self_loop(self):
        g = nx.Graph()
        g.add_edge(0, 0, weight=1.0)
        with pytest.raises(GraphFormatError):
            ensure_weights(g)

    def test_ensure_weights_rejects_negative(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=-3.0)
        with pytest.raises(GraphFormatError):
            ensure_weights(g)

    def test_normalize_graph(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "c", weight=2.0)
        h, nodes, index = normalize_graph(g)
        assert set(h.nodes()) == {0, 1, 2}
        assert h.number_of_edges() == 2
        for u, v, d in h.edges(data=True):
            assert g[nodes[u]][nodes[v]]["weight"] == d["weight"]
        assert all(index[nodes[i]] == i for i in range(3))
