"""Wire-level tests: the served results are bit-identical to one-shot calls.

Every test boots the real stack — asyncio HTTP transport, protocol
parsing, micro-batching, worker dispatch — on an ephemeral port and talks
to it through :class:`repro.serve.loadgen.HttpClient`.  The differential
suite compares ``/v1/solve`` responses, field by field with ``==``,
against :func:`repro.core.tecss.approximate_two_ecss` /
:func:`repro.dist.pipeline.distributed_two_ecss` payloads serialized by
the same canonical serializer — across every registered compute backend,
both engines, reweighted queries, and failure plans.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.tecss import approximate_two_ecss
from repro.dist.pipeline import distributed_two_ecss
from repro.fast import HAVE_NUMPY
from repro.graphs.families import make_family_instance
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.loadgen import HttpClient
from repro.serve.protocol import (
    failure_plan_from_payload,
    graph_payload,
    result_to_payload,
)
from repro.serve.server import HttpServer

COMPUTE_BACKENDS = ["reference", "auto"] + (["fast"] if HAVE_NUMPY else [])


def serve_session(coro_fn, config: ServeConfig | None = None):
    """Boot a server (inline workers by default), run ``coro_fn(client,
    server)``, tear everything down; returns the coroutine's result."""
    config = config or ServeConfig(workers=0)

    async def main():
        server = HttpServer(ServeApp(config), port=0)
        await server.start()
        client = HttpClient("127.0.0.1", server.port)
        try:
            return await coro_fn(client, server)
        finally:
            await client.close()
            await server.aclose()

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# the differential suite
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
def test_solve_bit_identical_across_backends(backend):
    cases = [
        ("cycle_chords", 26, 3, 0.25, "improved"),
        ("grid", 25, 5, 0.5, "basic"),
        ("hub_cycle", 22, 7, 1.0, "improved"),
    ]

    async def scenario(client, server):
        for family, n, seed, eps, variant in cases:
            graph = make_family_instance(family, n, seed=seed)
            status, resp = await client.request("POST", "/v1/solve", {
                "graph": graph_payload(graph), "eps": eps,
                "variant": variant, "backend": backend,
            })
            assert status == 200, resp
            want = result_to_payload(approximate_two_ecss(
                graph, eps=eps, variant=variant, backend=backend
            ))
            assert resp["result"] == want

    serve_session(scenario)


def test_solve_bit_identical_sim_engine_and_failures():
    graph = make_family_instance("cycle_chords", 22, seed=3)
    spec = {"random": {"p": 0.25, "max_rounds": 12, "seed": 2}}

    async def scenario(client, server):
        payload = graph_payload(graph)
        status, clean = await client.request("POST", "/v1/solve", {
            "graph": payload, "eps": 0.5, "engine": "sim",
        })
        assert status == 200, clean
        want = result_to_payload(distributed_two_ecss(graph, eps=0.5))
        assert clean["result"] == want

        status, lossy = await client.request("POST", "/v1/solve", {
            "topology": clean["topology"], "eps": 0.5, "engine": "sim",
            "failures": spec,
        })
        assert status == 200, lossy
        plan = failure_plan_from_payload(spec, graph)
        want_lossy = result_to_payload(
            distributed_two_ecss(graph, eps=0.5, failures=plan)
        )
        assert lossy["result"] == want_lossy

        status, explicit = await client.request("POST", "/v1/solve", {
            "topology": clean["topology"], "eps": 0.5, "engine": "sim",
            "failures": {"edges": [{"u": 0, "v": 1, "rounds": [1, 2, 3]}]},
        })
        assert status == 200, explicit
        eplan = failure_plan_from_payload(
            {"edges": [{"u": 0, "v": 1, "rounds": [1, 2, 3]}]}, graph
        )
        want_explicit = result_to_payload(
            distributed_two_ecss(graph, eps=0.5, failures=eplan)
        )
        assert explicit["result"] == want_explicit

    serve_session(scenario)


def test_reweighted_topology_reference_bit_identical():
    import networkx as nx

    graph = make_family_instance("grid", 30, seed=4)
    base = [d["weight"] for _, _, d in graph.edges(data=True)]
    column = [w * 1.3 + 0.5 for w in base]

    async def scenario(client, server):
        status, first = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "eps": 0.5,
        })
        assert status == 200
        status, resp = await client.request("POST", "/v1/solve", {
            "topology": first["topology"], "eps": 0.5, "weights": column,
        })
        assert status == 200, resp
        reweighted = nx.Graph()
        reweighted.add_nodes_from(graph.nodes())
        for (u, v, _), w in zip(graph.edges(data=True), column):
            reweighted.add_edge(u, v, weight=w)
        want = result_to_payload(
            approximate_two_ecss(reweighted, eps=0.5, backend="auto")
        )
        assert resp["result"] == want
        assert resp["topology"] == first["topology"]

    serve_session(scenario)


def test_simulate_mst_and_solve_batch():
    graph = make_family_instance("cycle_chords", 24, seed=9)

    async def scenario(client, server):
        payload = graph_payload(graph)
        status, resp = await client.request("POST", "/v1/solve_batch", {
            "requests": [
                {"graph": payload, "eps": 0.25},
                {"graph": payload, "eps": 0.5, "simulate_mst": True},
                {"graph": payload, "eps": 0.5, "variant": "basic"},
            ],
        })
        assert status == 200, resp
        answers = resp["responses"]
        assert [a["status"] for a in answers] == [200, 200, 200]
        wants = [
            approximate_two_ecss(graph, eps=0.25, backend="auto"),
            approximate_two_ecss(
                graph, eps=0.5, backend="auto", simulate_mst=True
            ),
            approximate_two_ecss(
                graph, eps=0.5, variant="basic", backend="auto"
            ),
        ]
        for answer, want in zip(answers, wants):
            assert answer["result"] == result_to_payload(want)
        assert answers[1]["result"]["mst_simulation"]["rounds"] > 0

    serve_session(scenario)


def test_process_sharded_workers_bit_identical():
    """The real process pool: topology-affine shards, identical results."""
    graphs = [
        make_family_instance("cycle_chords", 20, seed=1),
        make_family_instance("grid", 16, seed=2),
        make_family_instance("hub_cycle", 18, seed=3),
    ]

    async def scenario(client, server):
        shard_by_topology = {}
        for graph in graphs:
            for _ in range(2):  # second request exercises the warm path
                status, resp = await client.request("POST", "/v1/solve", {
                    "graph": graph_payload(graph), "eps": 0.5,
                })
                assert status == 200, resp
                want = result_to_payload(
                    approximate_two_ecss(graph, eps=0.5, backend="auto")
                )
                assert resp["result"] == want
                shard_by_topology.setdefault(
                    resp["topology"], set()
                ).add(resp["server"]["shard"])
        # Topology affinity: every topology always lands on one shard.
        assert all(len(s) == 1 for s in shard_by_topology.values())
        status, metrics = await client.request("GET", "/metrics")
        assert status == 200
        sessions = [
            s for worker in metrics["workers"] for s in worker["sessions"]
        ]
        assert {s["topology"] for s in sessions} == set(shard_by_topology)
        # Warm sessions: the second solve per topology hit the plan cache.
        assert all(s["plan_hits"] >= 1 for s in sessions)

    serve_session(
        scenario, ServeConfig(workers=2, max_delay_ms=1.0)
    )


# ---------------------------------------------------------------------------
# service behavior: routes, errors, introspection
# ---------------------------------------------------------------------------


def test_healthz_metrics_backends_routes():
    async def scenario(client, server):
        status, health = await client.request("GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok" and health["protocol"] == 1
        status, backends = await client.request("GET", "/backends")
        assert status == 200
        from repro.runtime.registry import registered_payload

        assert backends["backends"] == registered_payload()
        status, metrics = await client.request("GET", "/metrics")
        assert status == 200
        assert metrics["counters"]["http.requests"] >= 2
        assert "batcher" in metrics and "workers" in metrics

    serve_session(scenario)


def test_error_responses_are_structured():
    graph = make_family_instance("cycle_chords", 16, seed=5)

    async def scenario(client, server):
        # Unknown route -> 404; wrong method -> 405.
        status, resp = await client.request("GET", "/nope")
        assert status == 404 and resp["error"]["code"] == "not-found"
        status, resp = await client.request("GET", "/v1/solve")
        assert status == 405 and resp["error"]["code"] == "method-not-allowed"
        # Unparseable JSON -> 400, structured.
        status, resp = await client.request("POST", "/v1/solve", None)
        assert status == 400 and resp["error"]["code"] == "bad-json"
        # Unknown topology -> 404 with the stable code.
        status, resp = await client.request(
            "POST", "/v1/solve", {"topology": "feedfeed", "eps": 0.5}
        )
        assert status == 404 and resp["error"]["code"] == "unknown-topology"
        # Infeasible input graph (a bridge) -> 422, per protocol.
        status, resp = await client.request("POST", "/v1/solve", {
            "graph": {"edges": [[0, 1, 1.0], [1, 2, 1.0]]},
        })
        assert status == 422
        assert resp["error"]["code"] == "not-two-edge-connected"
        # Schema violation -> 400 with a field pointer.
        status, resp = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "eps": -1,
        })
        assert status == 400 and resp["error"]["field"] == "eps"
        # Wrong-length reweight column -> structured worker-side error.
        status, first = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph),
        })
        assert status == 200
        status, resp = await client.request("POST", "/v1/solve", {
            "topology": first["topology"], "weights": [1.0, 2.0],
        })
        assert status == 400
        assert resp["error"]["code"] == "invalid-request"
        # Failure plans need an engine with the capability.
        status, resp = await client.request("POST", "/v1/solve", {
            "topology": first["topology"],
            "failures": {"edges": [{"u": 0, "v": 1}]},
        })
        assert status == 400 and resp["error"]["code"] == "bad-request"
        # A poisoned request must not fail its batch-mates.
        status, resp = await client.request("POST", "/v1/solve_batch", {
            "requests": [
                {"topology": first["topology"], "eps": 0.5},
                {"topology": first["topology"], "weights": [1.0]},
            ],
        })
        assert status == 200
        assert resp["responses"][0]["status"] == 200
        assert resp["responses"][1]["status"] == 400

    serve_session(scenario)


def test_solve_batch_isolates_parse_and_topology_errors():
    """A malformed or unknown-topology item answers per item, and never
    discards its batch-mates' results."""
    graph = make_family_instance("cycle_chords", 16, seed=8)

    async def scenario(client, server):
        status, resp = await client.request("POST", "/v1/solve_batch", {
            "requests": [
                {"graph": graph_payload(graph), "eps": 0.5},
                {"topology": "deadbeef"},            # unknown topology
                {"graph": graph_payload(graph), "eps": -3},  # schema error
            ],
        })
        assert status == 200, resp
        answers = resp["responses"]
        assert [a["status"] for a in answers] == [200, 404, 400]
        want = result_to_payload(
            approximate_two_ecss(graph, eps=0.5, backend="auto")
        )
        assert answers[0]["result"] == want
        assert answers[1]["error"]["code"] == "unknown-topology"
        assert answers[2]["error"]["field"] == "eps"

    serve_session(scenario)


def test_metric_labels_are_bounded_and_worker_errors_keep_field():
    async def scenario(client, server):
        for path in ("/a", "/b", "/c"):
            await client.request("GET", path)
        status, metrics = await client.request("GET", "/metrics")
        assert status == 200
        labels = set(metrics["latency"])
        assert "GET /a" not in labels and "other" in labels
        # Worker-raised ProtocolError keeps its field pointer on the wire
        # (per-request mode validates the weights column in the worker).
        graph = make_family_instance("cycle_chords", 14, seed=2)
        status, first = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph),
        })
        assert status == 200
        status, resp = await client.request("POST", "/v1/solve", {
            "topology": first["topology"], "weights": [1.0],
        })
        assert status == 400 and resp["error"]["field"] == "weights"

    serve_session(scenario, ServeConfig(workers=0, mode="per-request"))


def test_oversize_header_line_answers_400():
    async def scenario(client, server):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        writer.write(
            b"GET /healthz HTTP/1.1\r\nX-Huge: " + b"a" * (1 << 17)
            + b"\r\n\r\n"
        )
        await writer.drain()
        line = await reader.readline()
        assert b"400" in line
        writer.close()
        await writer.wait_closed()

    serve_session(scenario)


def test_solve_batch_rejects_oversize_and_bad_shape():
    async def scenario(client, server):
        status, resp = await client.request("POST", "/v1/solve_batch", {})
        assert status == 400 and resp["error"]["code"] == "bad-request"
        status, resp = await client.request("POST", "/v1/solve_batch", {
            "requests": [{"topology": "x"}] * 5,
        })
        assert status == 400 and resp["error"]["code"] == "batch-too-large"

    serve_session(
        scenario,
        ServeConfig(workers=0, max_batch_request=4),
    )


def test_naive_mode_still_bit_identical():
    """per-request mode (the benchmark baseline) serves correct results."""
    graph = make_family_instance("cycle_chords", 18, seed=6)

    async def scenario(client, server):
        status, resp = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "eps": 0.5,
        })
        assert status == 200, resp
        want = result_to_payload(
            approximate_two_ecss(graph, eps=0.5, backend="auto")
        )
        assert resp["result"] == want
        assert resp["server"]["mode"] == "per-request"

    serve_session(scenario, ServeConfig(workers=0, mode="per-request"))


# ---------------------------------------------------------------------------
# tracing: bit-identity and the opt-in timings block
# ---------------------------------------------------------------------------


def test_responses_bit_identical_with_tracing_on_and_off():
    """Tracing must never reach the result payload: the same requests
    against a traced and an untraced server produce ``==`` envelopes."""
    graph = make_family_instance("cycle_chords", 20, seed=4)

    def collect(config):
        async def scenario(client, server):
            out = []
            status, resp = await client.request("POST", "/v1/solve", {
                "graph": graph_payload(graph), "eps": 0.5,
            })
            assert status == 200, resp
            resp.pop("server")  # latency_ms differs run to run by design
            out.append(resp)
            status, resp = await client.request("POST", "/v1/solve_batch", {
                "requests": [
                    {"graph": graph_payload(graph), "eps": 0.25},
                    {"graph": graph_payload(graph), "eps": 0.5,
                     "variant": "basic"},
                ],
            })
            assert status == 200, resp
            for answer in resp["responses"]:
                answer.pop("server")
            out.append(resp)
            return out

        return serve_session(scenario, config)

    traced = collect(ServeConfig(workers=0, tracing=True))
    untraced = collect(ServeConfig(workers=0, tracing=False))
    assert traced == untraced
    # And no stray timings leak in when the client never asked.
    assert "timings" not in traced[0]


def test_timings_block_is_opt_in_and_envelope_level():
    graph = make_family_instance("grid", 16, seed=2)

    async def scenario(client, server):
        body = {"graph": graph_payload(graph), "eps": 0.5, "timings": True}
        status, resp = await client.request("POST", "/v1/solve", body)
        assert status == 200, resp
        timings = resp["timings"]
        # Envelope-level sibling of "result": the canonical result payload
        # (what the differential suite compares) must not contain it.
        assert "timings" not in resp["result"]
        assert {"serve.parse", "serve.batch_wait"} <= set(timings)
        assert any(name.startswith("solve") for name in timings)
        for cell in timings.values():
            assert isinstance(cell["count"], int) and cell["count"] >= 1
            assert cell["total_ms"] >= 0.0
        # Same request without the flag: no timings key at all.
        status, resp = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "eps": 0.5,
        })
        assert status == 200 and "timings" not in resp
        # /metrics aggregates the same phase names server-side.
        status, metrics = await client.request("GET", "/metrics")
        assert status == 200
        assert "serve.dispatch" in metrics["phases"]
        assert metrics["phases"]["serve.parse"]["count"] >= 2

    serve_session(scenario, ServeConfig(workers=0, tracing=True))


def test_timings_flag_ignored_when_tracing_disabled():
    graph = make_family_instance("grid", 16, seed=2)

    async def scenario(client, server):
        body = {"graph": graph_payload(graph), "eps": 0.5, "timings": True}
        status, resp = await client.request("POST", "/v1/solve", body)
        assert status == 200, resp
        assert "timings" not in resp
        status, metrics = await client.request("GET", "/metrics")
        assert status == 200
        assert metrics["phases"] == {}

    serve_session(scenario, ServeConfig(workers=0, tracing=False))


def test_timings_across_process_workers():
    """Span trees ship back across the process boundary per batch."""
    graph = make_family_instance("cycle_chords", 18, seed=7)

    async def scenario(client, server):
        body = {"graph": graph_payload(graph), "eps": 0.5, "timings": True}
        status, resp = await client.request("POST", "/v1/solve", body)
        assert status == 200, resp
        timings = resp["timings"]
        # Worker-side phases made it back over the pipe.
        assert "worker.solve_batch" in timings
        assert "serve.dispatch" in timings
        assert any(name.startswith("solve") for name in timings)

    serve_session(
        scenario, ServeConfig(workers=1, tracing=True, max_delay_ms=1.0)
    )


# ---------------------------------------------------------------------------
# k-ECSS over the wire
# ---------------------------------------------------------------------------


def _dense_graph(n=14, seed=3):
    import networkx as nx
    import random as _random

    rng = _random.Random(seed)
    g = nx.gnp_random_graph(n, 0.6, seed=seed)
    assert nx.edge_connectivity(g) >= 4
    for u, v in sorted(g.edges()):
        g[u][v]["weight"] = round(rng.uniform(1.0, 20.0), 3)
    return g


@pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
def test_k_solve_bit_identical(backend):
    from repro.core.k_ecss import approximate_k_ecss

    graph = _dense_graph()

    async def scenario(client, server):
        for k in (2, 3, 4):
            status, resp = await client.request("POST", "/v1/solve", {
                "graph": graph_payload(graph), "k": k, "backend": backend,
            })
            assert status == 200, resp
            want = result_to_payload(
                approximate_k_ecss(graph, k, backend=backend)
            )
            assert resp["result"] == want

    serve_session(scenario)


def test_k_solve_batch_round_trip():
    from repro.core.k_ecss import MAX_K, approximate_k_ecss

    graph = _dense_graph(seed=5)

    async def scenario(client, server):
        status, first = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "backend": "reference",
        })
        assert status == 200, first
        topo = first["topology"]
        status, resp = await client.request("POST", "/v1/solve_batch", {
            "requests": [
                {"topology": topo, "k": 3, "backend": "reference"},
                {"topology": topo, "k": 4, "backend": "reference"},
                {"topology": topo, "k": 1},
                {"topology": topo, "k": MAX_K + 1},
            ],
        })
        assert status == 200, resp
        ok3, ok4, bad_low, bad_high = resp["responses"]
        for k, item in ((3, ok3), (4, ok4)):
            assert item["status"] == 200, item
            want = result_to_payload(
                approximate_k_ecss(graph, k, backend="reference")
            )
            assert item["result"] == want
        for item in (bad_low, bad_high):
            assert item["status"] == 400
            assert item["error"]["code"] == "unsupported-k"
            assert item["error"]["field"] == "k"

    serve_session(scenario)


def test_delta_rejects_k_over_the_wire():
    graph = _dense_graph(seed=7)

    async def scenario(client, server):
        status, first = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "backend": "reference",
        })
        assert status == 200, first
        edge = sorted(graph.edges())[0]
        status, resp = await client.request("POST", "/v1/delta", {
            "topology": first["topology"],
            "delta": [[edge[0], edge[1], 9.0]],
            "k": 3,
        })
        assert status == 400
        assert resp["error"]["code"] == "unsupported-k"
        assert resp["error"]["field"] == "k"

    serve_session(scenario)


def test_infeasible_k_is_structured():
    graph = make_family_instance("cycle_chords", 16, seed=1)

    async def scenario(client, server):
        status, resp = await client.request("POST", "/v1/solve", {
            "graph": graph_payload(graph), "k": 4, "backend": "reference",
        })
        assert status == 422
        assert resp["error"]["code"] == "not-k-edge-connected"

    serve_session(scenario)


def test_backends_route_advertises_max_k():
    from repro.core.k_ecss import MAX_K

    async def scenario(client, server):
        status, resp = await client.request("GET", "/backends", None)
        assert status == 200
        assert resp["max_k"] == MAX_K
        by_name = {
            (b["kind"], b["name"]): set(b["capabilities"])
            for b in resp["backends"]
        }
        assert "k-ecss" in by_name[("engine", "local")]
        assert "k-ecss" in by_name[("compute", "reference")]
        assert "k-ecss" not in by_name[("engine", "sim")]

    serve_session(scenario)
