"""Tests for the parallel set cover and the Theorem 1.2 pipeline."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.baselines.exact_milp import exact_tap_milp
from repro.baselines.greedy_tap import greedy_tap
from repro.exceptions import NotTwoEdgeConnectedError
from repro.graphs import cycle_with_chords, erdos_renyi_2ec, grid_graph, is_two_edge_connected
from repro.shortcuts.setcover import parallel_setcover_tap
from repro.shortcuts.tap_shortcut import shortcut_tap, shortcut_two_ecss

from conftest import random_tap_links, random_tree


class TestParallelSetCover:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_produces_valid_cover(self, seed):
        tree = random_tree(60, seed=seed)
        links = random_tap_links(tree, 120, seed=seed + 10)
        res = parallel_setcover_tap(tree, links, seed=seed)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())

    def test_deterministic_given_seed(self):
        tree = random_tree(40, seed=4)
        links = random_tap_links(tree, 80, seed=5)
        r1 = parallel_setcover_tap(tree, links, seed=9)
        r2 = parallel_setcover_tap(tree, links, seed=9)
        assert r1.links == r2.links
        assert r1.weight == r2.weight

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_log_quality_vs_exact(self, seed):
        # O(log n) approximation: compare against the exact optimum on
        # small instances (the constant in O() is modest in practice).
        tree = random_tree(12, seed=seed)
        links = random_tap_links(tree, 6, seed=seed + 20)
        opt = exact_tap_milp(tree, links)
        res = parallel_setcover_tap(tree, links, seed=seed)
        assert res.weight <= (math.log(tree.n) + 1) * opt.weight * 1.5 + 1e-9

    def test_comparable_to_sequential_greedy(self):
        tree = random_tree(50, seed=6)
        links = random_tap_links(tree, 100, seed=7)
        par = parallel_setcover_tap(tree, links, seed=8)
        seq = greedy_tap(tree, links)
        # the parallel variant may lose a constant factor vs greedy
        assert par.weight <= 6.0 * seq.weight + 1e-9

    def test_iteration_accounting(self):
        tree = random_tree(50, seed=9)
        links = random_tap_links(tree, 100, seed=10)
        res = parallel_setcover_tap(tree, links, seed=11)
        assert res.iterations >= res.phases >= 1
        assert res.accepts >= 1
        assert res.partwise_ops > 0
        assert res.modeled_rounds(10, 50.0) >= res.iterations * 10

    def test_infeasible_raises(self):
        tree = random_tree(10, shape="path")
        with pytest.raises(NotTwoEdgeConnectedError):
            parallel_setcover_tap(tree, [(9, 5, 1.0)], seed=0)

    def test_bad_eps(self):
        tree = random_tree(10, seed=1)
        with pytest.raises(ValueError):
            parallel_setcover_tap(tree, [(1, 2, 1.0)], eps=1.5)


class TestShortcutTwoEcss:
    @pytest.mark.parametrize("maker", [
        lambda: grid_graph(6, 6, seed=1),
        lambda: erdos_renyi_2ec(60, seed=2),
        lambda: cycle_with_chords(50, 20, seed=3),
    ])
    def test_output_feasible(self, maker):
        g = maker()
        res = shortcut_two_ecss(g, seed=4)
        sub = nx.Graph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(res.edges)
        assert is_two_edge_connected(sub)
        assert res.weight >= res.mst_weight

    def test_quality_measured(self):
        g = grid_graph(6, 6, seed=5)
        res = shortcut_two_ecss(g, seed=6)
        assert res.shortcut_quality > 0
        assert res.modeled_rounds > 0
        assert "shortcut 2-ECSS" in res.summary()

    def test_shortcut_tap_standalone(self):
        tree = random_tree(40, seed=7)
        links = random_tap_links(tree, 80, seed=8)
        res = shortcut_tap(tree, links, seed=9)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())
