"""Tests for baselines: greedy, arborescence-exact, MILP, brute force.

The cross-checks here are the backbone of the experiment suite's trust
chain: brute force == MILP == arborescence (on vertical instances), and the
paper's algorithm respects its guarantee against all of them.
"""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.baselines.arborescence import (
    exact_vertical_tap,
    kt_tecss_3approx,
    tap_2approx_arborescence,
)
from repro.baselines.exact_milp import (
    brute_force_tap,
    brute_force_two_ecss,
    exact_tap_milp,
    exact_two_ecss_milp,
)
from repro.baselines.greedy_tap import greedy_tap
from repro.baselines.trivial import all_edges_solution, mst_plus_cheapest_cover
from repro.core.instance import TAPInstance
from repro.core.tap import approximate_tap
from repro.core.virtual_graph import build_virtual_edges
from repro.exceptions import NotTwoEdgeConnectedError, SolverError
from repro.graphs import cycle_with_chords, erdos_renyi_2ec

from conftest import random_tap_links, random_tree, random_vertical_edges


def small_links(tree, count, seed):
    rng = random.Random(seed)
    links = []
    for dec, anc in random_vertical_edges(tree, count - len(tree.leaves()), seed=seed):
        links.append((dec, anc, rng.uniform(1, 20)))
    for leaf in tree.leaves():
        links.append((leaf, tree.root, rng.uniform(10, 40)))
    return links


class TestCrossChecks:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_milp_equals_brute_force_tap(self, seed):
        tree = random_tree(8, seed=seed)
        links = small_links(tree, 10, seed + 10)[:14]
        bf = brute_force_tap(tree, links)
        mi = exact_tap_milp(tree, links)
        assert mi.weight == pytest.approx(bf.weight, rel=1e-9)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_arborescence_exact_on_vertical_instances(self, seed):
        # On purely vertical links, Edmonds == brute force == MILP.
        tree = random_tree(9, seed=seed)
        rng = random.Random(seed)
        links = [
            (dec, anc, rng.uniform(1, 20))
            for dec, anc in random_vertical_edges(tree, 8, seed=seed)
        ]
        for leaf in tree.leaves():
            links.append((leaf, tree.root, rng.uniform(10, 40)))
        links = links[:14]
        vedges = build_virtual_edges(tree, links)
        try:
            bf = brute_force_tap(tree, links)
        except NotTwoEdgeConnectedError:
            return
        arb = exact_vertical_tap(tree, vedges)
        assert arb.weight == pytest.approx(bf.weight, rel=1e-9)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_two_ecss_milp_equals_brute_force(self, seed):
        g = cycle_with_chords(7, 3, seed=seed)
        bf = brute_force_two_ecss(g)
        mi = exact_two_ecss_milp(g)
        assert mi.weight == pytest.approx(bf.weight, rel=1e-9)

    def test_two_ecss_milp_solution_is_feasible(self):
        g = erdos_renyi_2ec(16, seed=7)
        res = exact_two_ecss_milp(g)
        sub = nx.Graph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(res.chosen)
        assert nx.is_connected(sub)
        assert next(nx.bridges(sub), None) is None


class TestGuarantees:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_fj_2approx_against_milp(self, seed):
        tree = random_tree(12, seed=seed)
        links = small_links(tree, 14, seed + 20)[:16]
        opt = exact_tap_milp(tree, links)
        _, w2 = tap_2approx_arborescence(tree, links)
        assert w2 <= 2 * opt.weight + 1e-9
        assert w2 >= opt.weight - 1e-9

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_greedy_log_ratio(self, seed):
        tree = random_tree(12, seed=seed)
        links = small_links(tree, 14, seed + 30)[:16]
        opt = exact_tap_milp(tree, links)
        gr = greedy_tap(tree, links)
        h_n = math.log(tree.n) + 1
        assert gr.weight <= h_n * opt.weight + 1e-9

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_paper_algorithm_respects_exact_opt(self, seed):
        # The headline sanity check: (4+eps)-approx TAP vs the true optimum.
        eps = 0.5
        tree = random_tree(12, seed=seed)
        links = small_links(tree, 14, seed + 40)[:16]
        opt = exact_tap_milp(tree, links)
        res = approximate_tap(tree, links, eps=eps)
        assert res.weight <= (4 + eps) * opt.weight + 1e-9

    @pytest.mark.parametrize("seed", [1, 2])
    def test_paper_2ecss_respects_exact_opt(self, seed):
        g = cycle_with_chords(7, 2, seed=seed)
        from repro.core.tecss import approximate_two_ecss

        opt = brute_force_two_ecss(g)
        res = approximate_two_ecss(g, eps=0.5)
        assert res.weight <= (5 + 0.5) * opt.weight + 1e-9
        # ... and the certified lower bound is indeed a lower bound:
        assert res.certified_lower_bound <= opt.weight + 1e-9

    def test_kt_3approx_feasible_and_bounded(self):
        g = erdos_renyi_2ec(30, seed=9)
        res = kt_tecss_3approx(g)
        sub = nx.Graph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(res.edges)
        assert nx.is_connected(sub)
        assert next(nx.bridges(sub), None) is None
        assert res.weight == pytest.approx(res.mst_weight + res.aug_weight)


class TestTrivialBaselines:
    def test_all_edges_upper_bounds_everything(self):
        g = cycle_with_chords(15, 6, seed=3)
        from repro.core.tecss import approximate_two_ecss

        res = approximate_two_ecss(g, eps=0.5)
        assert res.weight <= all_edges_solution(g) + 1e-9

    def test_mst_plus_cheapest_cover_feasible_weightwise(self):
        g = cycle_with_chords(15, 6, seed=4)
        w = mst_plus_cheapest_cover(g)
        assert w > 0
        assert w <= all_edges_solution(g) + 1e-9


class TestErrorHandling:
    def test_brute_force_caps(self):
        tree = random_tree(30, seed=1)
        links = small_links(tree, 40, seed=2)
        with pytest.raises(SolverError):
            brute_force_tap(tree, links)

    def test_infeasible_tap(self):
        tree = random_tree(8, shape="path")
        with pytest.raises(NotTwoEdgeConnectedError):
            exact_tap_milp(tree, [(7, 4, 1.0)])
        with pytest.raises(NotTwoEdgeConnectedError):
            greedy_tap(tree, [(7, 4, 1.0)])

    def test_greedy_covers(self):
        tree = random_tree(25, seed=5)
        links = random_tap_links(tree, 50, seed=6)
        res = greedy_tap(tree, links)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())


class TestKEcssMilp:
    """The k-connectivity MILP, including its infeasibility paths.

    The 2-ECSS MILP's infeasibility coverage never exercised the k >= 3
    separation: a graph whose min cut is below k must surface as the
    structured connectivity error *before* (or instead of) the solver
    returning a disconnected "optimum".
    """

    def test_min_cut_below_k_is_structured(self):
        from repro.baselines.exact_milp import exact_k_ecss_milp
        from repro.exceptions import NotKEdgeConnectedError

        g = cycle_with_chords(10, 0, seed=1)  # exactly 2-edge-connected
        assert nx.edge_connectivity(g) == 2
        with pytest.raises(NotKEdgeConnectedError):
            exact_k_ecss_milp(g, 3)

    def test_disconnected_input_is_structured(self):
        from repro.baselines.exact_milp import exact_k_ecss_milp
        from repro.exceptions import NotConnectedError

        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(2, 3, weight=1.0)
        with pytest.raises(NotConnectedError):
            exact_k_ecss_milp(g, 3)

    @pytest.mark.parametrize("k", [0, 1, -1, 1.5, True])
    def test_bad_k_rejected(self, k):
        from repro.baselines.exact_milp import exact_k_ecss_milp

        g = cycle_with_chords(8, 2, seed=1)
        with pytest.raises(ValueError):
            exact_k_ecss_milp(g, k)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_k2_equals_two_ecss_milp(self, seed):
        from repro.baselines.exact_milp import exact_k_ecss_milp

        g = cycle_with_chords(8, 3, seed=seed)
        assert exact_k_ecss_milp(g, 2).weight == pytest.approx(
            exact_two_ecss_milp(g).weight, rel=1e-9
        )

    @pytest.mark.parametrize("k", [3, 4])
    def test_optimum_is_k_connected(self, k):
        from repro.baselines.exact_milp import exact_k_ecss_milp
        from repro.core.k_ecss import assert_k_edge_connected

        g = erdos_renyi_2ec(10, 0.7, seed=4)
        if nx.edge_connectivity(g) < k:
            pytest.skip("instance below target connectivity")
        res = exact_k_ecss_milp(g, k)
        assert_k_edge_connected(g, res.chosen, k)
