"""Tests for :mod:`repro.obs` tracing: spans, tracers, timers, exports.

Covers the tentpole contracts: parent linkage through contextvars
(including across asyncio tasks), the disabled fast path (shared no-op
span, no context mutation, no root collection), the always-measuring
:class:`~repro.obs.Timer` bridge, JSON-safe tree round-trips (the
cross-process wire form), Chrome trace-event export, and the bounded
root collection of long-lived tracers.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _restore_tracer():
    """Every test runs against its own tracer; the global one survives."""
    previous = obs.set_tracer(obs.Tracer(enabled=False))
    yield
    obs.set_tracer(previous)


# ---------------------------------------------------------------------------
# span trees and parent linkage
# ---------------------------------------------------------------------------


def test_nested_spans_build_a_tree():
    tracer = obs.enable()
    with obs.span("root", kind="test") as root:
        with obs.span("child.a"):
            with obs.span("leaf"):
                pass
        with obs.span("child.b") as b:
            b.set(items=3)
    assert [c.name for c in root.children] == ["child.a", "child.b"]
    assert root.children[0].children[0].name == "leaf"
    assert root.attrs == {"kind": "test"}
    assert root.children[1].attrs == {"items": 3}
    assert root.duration_s >= root.children[0].duration_s
    # Only the root is collected; children live in the tree.
    assert [s.name for s in tracer.roots] == ["root"]


def test_walk_is_depth_first():
    obs.enable()
    with obs.span("r") as r:
        with obs.span("a"):
            with obs.span("a1"):
                pass
        with obs.span("b"):
            pass
    assert [s.name for s in r.walk()] == ["r", "a", "a1", "b"]


def test_exception_annotates_and_restores_context():
    obs.enable()
    with pytest.raises(ValueError):
        with obs.span("outer"):
            with obs.span("failing"):
                raise ValueError("boom")
    assert obs.current_span() is None
    tracer = obs.get_tracer()
    (root,) = tracer.roots
    assert root.children[0].attrs["error"] == "ValueError"


def test_current_span_and_annotate():
    obs.enable()
    assert obs.current_span() is None
    with obs.span("region") as sp:
        assert obs.current_span() is sp
        obs.annotate(rows=7)
    assert sp.attrs == {"rows": 7}
    assert obs.current_span() is None
    obs.annotate(ignored=True)  # no open span: must be a silent no-op


def test_asyncio_tasks_get_independent_trees():
    obs.enable()

    async def request(name):
        with obs.span(name):
            await asyncio.sleep(0)
            with obs.span(name + ".inner"):
                await asyncio.sleep(0)

    async def main():
        await asyncio.gather(request("req1"), request("req2"))

    asyncio.run(main())
    roots = obs.get_tracer().drain()
    assert sorted(s.name for s in roots) == ["req1", "req2"]
    for root in roots:
        assert [c.name for c in root.children] == [root.name + ".inner"]


def test_traced_decorator():
    calls = []

    @obs.traced("math.double")
    def double(x):
        calls.append(x)
        return 2 * x

    assert double(4) == 8  # disabled: falls straight through
    assert obs.get_tracer().roots == []
    tracer = obs.enable()
    assert double(5) == 10
    assert [s.name for s in tracer.roots] == ["math.double"]
    assert calls == [4, 5]


# ---------------------------------------------------------------------------
# the disabled fast path
# ---------------------------------------------------------------------------


def test_disabled_span_is_the_shared_noop():
    sp = obs.span("anything", attr=1)
    assert sp is obs.NOOP_SPAN
    with sp as inner:
        assert inner is obs.NOOP_SPAN
        # No span context is established beneath a disabled region.
        assert obs.current_span() is None
    assert sp.set(more=2) is obs.NOOP_SPAN
    assert obs.get_tracer().roots == []


def test_disabled_region_does_not_break_enabled_nesting():
    obs.enable()
    with obs.span("outer") as outer:
        obs.get_tracer().enabled = False
        with obs.span("invisible"):
            obs.get_tracer().enabled = True
            with obs.span("visible"):
                pass
    # The noop span is transparent: "visible" hangs off "outer".
    assert [c.name for c in outer.children] == ["visible"]


# ---------------------------------------------------------------------------
# Timer: the build_times bridge
# ---------------------------------------------------------------------------


def test_timer_measures_while_disabled():
    with obs.timer("plan.mst") as clock:
        sum(range(1000))
    assert clock.duration_s > 0.0
    assert obs.get_tracer().roots == []


def test_timer_span_duration_matches_timer_exactly():
    tracer = obs.enable()
    with obs.timer("plan.links", flavor="fast") as clock:
        sum(range(1000))
    (root,) = tracer.roots
    assert root.name == "plan.links"
    assert root.attrs == {"flavor": "fast"}
    # One measurement feeds both consumers; they can never disagree.
    assert root.duration_s == clock.duration_s


# ---------------------------------------------------------------------------
# tracer lifecycle and bounds
# ---------------------------------------------------------------------------


def test_set_tracer_returns_previous():
    first = obs.get_tracer()
    mine = obs.Tracer(enabled=True)
    assert obs.set_tracer(mine) is first
    assert obs.get_tracer() is mine
    assert obs.disable() is mine
    assert not obs.get_tracer().enabled


def test_root_collection_is_bounded():
    tracer = obs.enable(max_roots=3)
    for i in range(5):
        with obs.span(f"root{i}"):
            pass
    assert [s.name for s in tracer.roots] == ["root0", "root1", "root2"]
    assert tracer.dropped == 2
    drained = tracer.drain()
    assert len(drained) == 3 and tracer.roots == []
    tracer.clear()
    assert tracer.dropped == 0


# ---------------------------------------------------------------------------
# wire form, reductions, exports
# ---------------------------------------------------------------------------


def _sample_tree():
    obs.enable()
    with obs.span("batch", requests=2) as root:
        with obs.span("solve"):
            with obs.span("forward"):
                pass
        with obs.span("solve"):
            pass
    return root


def test_to_dict_from_dict_round_trip():
    root = _sample_tree()
    payload = root.to_dict()
    json.dumps(payload)  # must be JSON-safe as-is
    rebuilt = obs.Span.from_dict(payload)
    assert [s.name for s in rebuilt.walk()] == [s.name for s in root.walk()]
    assert rebuilt.attrs == root.attrs
    assert rebuilt.duration_s == root.duration_s
    assert rebuilt.children[0].children[0].name == "forward"


def test_phase_totals_counts_and_accumulates():
    root = _sample_tree()
    totals = obs.phase_totals([root])
    assert totals["solve"][0] == 2
    assert totals["batch"][0] == 1
    assert totals["solve"][1] == pytest.approx(
        root.children[0].duration_s + root.children[1].duration_s
    )
    # `into` accumulates across calls (the /metrics aggregation shape).
    obs.phase_totals([root], into=totals)
    assert totals["solve"][0] == 4
    assert isinstance(totals["solve"][0], int)


def test_chrome_events_and_trace_file(tmp_path):
    root = _sample_tree()
    events = obs.chrome_events([root], pid=7, tid=9)
    assert len(events) == 4
    assert {e["ph"] for e in events} == {"X"}
    assert all(e["pid"] == 7 and e["tid"] == 9 for e in events)
    batch = next(e for e in events if e["name"] == "batch")
    assert batch["args"] == {"requests": 2}
    assert batch["ts"] == pytest.approx(root.start_s * 1e6)
    assert batch["dur"] == pytest.approx(root.duration_s * 1e6)
    path = tmp_path / "trace.json"
    count = obs.write_chrome_trace(str(path), [root])
    assert count == 4
    loaded = json.loads(path.read_text())
    assert [e["name"] for e in loaded] == [e["name"] for e in events]
