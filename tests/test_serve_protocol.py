"""Schema-validation tests for the serving wire protocol."""

from __future__ import annotations

import pytest

from repro.graphs import cycle_with_chords
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    failure_plan_from_payload,
    fingerprint_graph,
    graph_from_payload,
    graph_payload,
    parse_graph_payload,
    parse_solve_request,
    result_to_payload,
)


def _edges(*triples):
    return {"edges": [list(t) for t in triples]}


def _err(body) -> ProtocolError:
    with pytest.raises(ProtocolError) as excinfo:
        parse_solve_request(body)
    return excinfo.value


class TestRequestParsing:
    def test_minimal_graph_request(self):
        req = parse_solve_request(
            {"graph": _edges((0, 1, 1.0), (1, 2, 2), (2, 0, 3.0))}
        )
        assert req.topology == fingerprint_graph(req.graph)
        assert req.graph["nodes"] == [0, 1, 2]
        assert req.eps == 0.25 and req.variant == "improved"
        assert req.backend is None and req.engine is None

    def test_topology_reference_request(self):
        req = parse_solve_request({"topology": "abc123", "eps": 0.5})
        assert req.topology == "abc123" and req.graph is None

    def test_graph_and_topology_are_exclusive(self):
        body = {"graph": _edges((0, 1, 1)), "topology": "x"}
        assert _err(body).code == "bad-request"
        assert _err({}).code == "bad-request"

    def test_protocol_version_checked(self):
        body = {"graph": _edges((0, 1, 1)), "protocol": 99}
        err = _err(body)
        assert err.code == "unsupported-protocol"
        assert str(PROTOCOL_VERSION) in str(err)

    def test_unknown_field_rejected(self):
        err = _err({"graph": _edges((0, 1, 1)), "epsilon": 0.5})
        assert err.code == "unknown-field" and err.field == "epsilon"

    @pytest.mark.parametrize("eps", [0, -1, "x", float("nan"), True])
    def test_bad_eps(self, eps):
        err = _err({"graph": _edges((0, 1, 1)), "eps": eps})
        assert err.code == "invalid-field" and err.field == "eps"

    def test_bad_variant_and_bools(self):
        g = _edges((0, 1, 1))
        assert _err({"graph": g, "variant": "best"}).field == "variant"
        assert _err({"graph": g, "segmented": "yes"}).field == "segmented"
        assert _err({"graph": g, "validate": 1}).field == "validate"

    def test_unknown_backend_lists_registered(self):
        err = _err({"graph": _edges((0, 1, 1)), "backend": "warp"})
        assert err.code == "unknown-backend"
        assert "reference" in str(err)
        err = _err({"graph": _edges((0, 1, 1)), "engine": "quantum"})
        assert err.code == "unknown-backend"
        assert "sim" in str(err)

    def test_bad_weights(self):
        g = _edges((0, 1, 1))
        assert _err({"graph": g, "weights": []}).code == "invalid-weight"
        assert _err({"graph": g, "weights": [-1.0]}).code == "invalid-weight"
        assert _err({"graph": g, "weights": ["a"]}).code == "invalid-weight"


class TestGraphPayload:
    def test_duplicate_edge_rejected_either_orientation(self):
        with pytest.raises(ProtocolError) as e:
            parse_graph_payload(_edges((0, 1, 1), (1, 0, 2)))
        assert e.value.code == "duplicate-edge"

    def test_self_loop_and_bad_labels(self):
        with pytest.raises(ProtocolError, match="self-loop"):
            parse_graph_payload(_edges((3, 3, 1)))
        with pytest.raises(ProtocolError, match="label"):
            parse_graph_payload(_edges(([1], 2, 1)))
        with pytest.raises(ProtocolError, match="label"):
            parse_graph_payload(_edges((True, 2, 1)))

    def test_bad_weights(self):
        for w in (-1, float("inf"), None, "x"):
            with pytest.raises(ProtocolError):
                parse_graph_payload(_edges((0, 1, w)))

    def test_int_and_str_labels_are_distinct(self):
        payload = parse_graph_payload(_edges((1, "1", 1.0), ("1", 2, 1.0)))
        assert payload["nodes"] == [1, "1", 2]

    def test_explicit_nodes_checked(self):
        with pytest.raises(ProtocolError, match="duplicates"):
            parse_graph_payload({"nodes": [0, 0], "edges": [[0, 1, 1]]})
        with pytest.raises(ProtocolError, match="missing"):
            parse_graph_payload({"nodes": [0, 1], "edges": [[0, 2, 1]]})

    def test_round_trip_preserves_identity(self):
        g = cycle_with_chords(24, 9, seed=3)
        payload = graph_payload(g)
        parsed = parse_graph_payload(payload)
        assert parsed == payload
        rebuilt = graph_from_payload(parsed)
        assert list(rebuilt.nodes()) == list(g.nodes())
        assert list(rebuilt.edges(data=True)) == list(g.edges(data=True))

    def test_fingerprint_sensitive_to_order_and_weights(self):
        a = parse_graph_payload(_edges((0, 1, 1), (1, 2, 1), (2, 0, 1)))
        b = parse_graph_payload(_edges((1, 2, 1), (0, 1, 1), (2, 0, 1)))
        c = parse_graph_payload(_edges((0, 1, 2), (1, 2, 1), (2, 0, 1)))
        keys = {fingerprint_graph(p) for p in (a, b, c)}
        assert len(keys) == 3
        assert fingerprint_graph(a) == fingerprint_graph(
            parse_graph_payload(_edges((0, 1, 1), (1, 2, 1), (2, 0, 1)))
        )


class TestFailureSpecs:
    def test_random_spec_builds_seeded_plan(self):
        g = cycle_with_chords(12, 4, seed=1)
        spec = {"random": {"p": 0.3, "max_rounds": 5, "seed": 7}}
        plan1 = failure_plan_from_payload(spec, g)
        plan2 = failure_plan_from_payload(spec, g)
        assert plan1.by_round == plan2.by_round
        assert not plan1.empty()

    def test_edges_spec(self):
        plan = failure_plan_from_payload(
            {"edges": [{"u": 0, "v": 1, "rounds": [1, 2]},
                       {"u": 2, "v": 3}]},
            None,
        )
        assert plan.is_down(1, 0, 1) and plan.is_down(2, 1, 0)
        assert not plan.is_down(3, 0, 1)
        assert plan.is_down(99, 2, 3)  # no rounds = every round

    def test_bad_specs(self):
        g = _edges((0, 1, 1))
        for spec in (
            {"random": {"p": 2.0, "max_rounds": 5}},
            {"random": {"p": 0.5, "max_rounds": 0}},
            {"edges": [{"u": 0}]},
            {"edges": [{"u": 0, "v": 1, "rounds": [0]}]},
            {"nope": 1},
            [],
        ):
            err = _err({"graph": g, "failures": spec})
            assert err.code == "invalid-failures"


class TestResultSerialization:
    def test_payload_is_json_canonical(self):
        import json

        from repro.core.tecss import approximate_two_ecss

        g = cycle_with_chords(20, 8, seed=2)
        res = approximate_two_ecss(g, eps=0.5)
        payload = result_to_payload(res)
        assert payload == json.loads(json.dumps(payload))
        assert payload["type"] == "two_ecss"
        assert payload["weight"] == res.weight
        assert payload["edges"] == [list(e) for e in res.edges]
        aug = payload["augmentation"]
        assert aug["dual_bound"] == res.augmentation.dual_bound
        assert all(isinstance(k, str) for k in aug["iterations_per_epoch"])

    def test_dist_payload(self):
        from repro.dist.pipeline import distributed_two_ecss

        g = cycle_with_chords(18, 6, seed=4)
        dist = distributed_two_ecss(g, eps=0.5)
        payload = result_to_payload(dist)
        assert payload["type"] == "dist_two_ecss"
        assert payload["measured_rounds"] == dist.measured_rounds
        assert payload["result"]["weight"] == dist.result.weight
        assert payload["comparison"] == dist.comparison


class TestKField:
    def test_k_defaults_to_two_and_round_trips(self):
        assert parse_solve_request({"graph": _edges((0, 1, 1))}).k == 2
        req = parse_solve_request({"graph": _edges((0, 1, 1)), "k": 3})
        assert req.k == 3

    def test_max_k_accepted(self):
        from repro.core.k_ecss import MAX_K

        req = parse_solve_request({"graph": _edges((0, 1, 1)), "k": MAX_K})
        assert req.k == MAX_K

    @pytest.mark.parametrize("k", [0, 1, -1, 2.5, "3", True, False])
    def test_unsupported_k_rejected(self, k):
        err = _err({"graph": _edges((0, 1, 1)), "k": k})
        assert err.code == "unsupported-k" and err.field == "k"

    def test_k_above_capability_rejected(self):
        from repro.core.k_ecss import MAX_K

        err = _err({"graph": _edges((0, 1, 1)), "k": MAX_K + 1})
        assert err.code == "unsupported-k" and err.field == "k"
        assert str(MAX_K) in str(err)

    def test_delta_rejects_k_not_two(self):
        from repro.serve.protocol import parse_delta_request

        body = {"topology": "t", "delta": [[0, 1, 2.0]], "k": 2}
        assert parse_delta_request(body).k == 2
        for k in (3, 4):
            with pytest.raises(ProtocolError) as excinfo:
                parse_delta_request(
                    {"topology": "t", "delta": [[0, 1, 2.0]], "k": k}
                )
            assert excinfo.value.code == "unsupported-k"
            assert excinfo.value.field == "k"

    def test_k_ecss_payload(self):
        import json

        from repro.core.k_ecss import approximate_k_ecss
        from repro.graphs import erdos_renyi_2ec

        g = erdos_renyi_2ec(14, 0.6, seed=3)
        res = approximate_k_ecss(g, 3)
        payload = result_to_payload(res)
        assert payload == json.loads(json.dumps(payload))
        assert payload["type"] == "k_ecss" and payload["k"] == 3
        assert payload["weight"] == res.weight
        assert payload["edges"] == [list(e) for e in res.edges]
        assert payload["guarantee"] == res.guarantee
        assert payload["certified_lower_bound"] == res.certified_lower_bound
        assert [r["j"] for r in payload["rounds"]] == [3]
        assert payload["base"]["type"] == "two_ecss"
        assert payload["base"]["weight"] == res.base.weight
