"""Round-complexity shape regression: measured rounds track Level-M prices.

For every tested family and size, the engine rounds measured for each
primitive of the distributed pipeline must stay within fixed multiplicative
bounds of the :class:`~repro.core.rounds.RoundCostModel` price for the same
primitive.  The bounds are deliberately loose constants — the model drops
O() factors — but they are *fixed*: a future engine edit that inflates
rounds (or a cost-model edit that deflates prices) by more than a constant
breaks this suite instead of silently drifting.
"""

from __future__ import annotations

import pytest

from repro.core.rounds import RoundCostModel
from repro.dist import RATIO_BOUND, dist_specs, distributed_two_ecss
from repro.graphs.families import make_family_instance
from repro.sim import ScenarioRunner

#: Fixed regression bounds on measured/priced per primitive run.  The upper
#: bound is the documented constant of repro.dist.accounting; the lower
#: bound catches a cost model accidentally inflated relative to reality.
LOW, HIGH = 0.02, RATIO_BOUND

FAMILIES = ("cycle_chords", "erdos_renyi", "grid", "theta", "hub_cycle",
            "caterpillar", "torus", "lollipop")
SIZES = (24, 60)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("n", SIZES)
def test_measured_rounds_track_model_prices(family, n):
    graph = make_family_instance(family, n, seed=1)
    dist = distributed_two_ecss(graph, eps=0.5)
    for row in dist.comparison[:-1]:
        ratio = row["ratio"]
        assert LOW <= ratio <= HIGH, (
            f"{family}/n={n}: primitive {row['primitive']} measured "
            f"{row['measured_rounds']} rounds vs price "
            f"{row['priced_rounds']:.1f} (ratio {ratio:.2f} outside "
            f"[{LOW}, {HIGH}])"
        )
    assert dist.within_bound
    # The TOTAL row aggregates consistently.
    total = dist.comparison[-1]
    assert total["measured_rounds"] == dist.measured_rounds
    assert total["ratio"] <= HIGH


@pytest.mark.parametrize("family", ("cycle_chords", "grid", "hub_cycle"))
def test_primitive_specs_track_prices_via_scenario_runner(family):
    # The standalone primitive sweeps (ScenarioRunner path) obey the same
    # constant-factor envelope as the pipeline's in-context runs.
    runner = ScenarioRunner()
    results = runner.sweep(
        families=[family], sizes=[40], seeds=[1, 2], specs=dist_specs()
    )
    for res in results:
        assert res.stats.quiescent
        ratio = res.stats.rounds / res.priced_rounds
        assert ratio <= HIGH, (
            f"{family}: spec {res.program} measured {res.stats.rounds} vs "
            f"priced {res.priced_rounds:.1f}"
        )


def test_theorem_bound_dominates_measured_pipeline_rounds():
    # Theorem 1.1's (D + sqrt n) log^2 n / eps envelope must sit above the
    # measured total for the whole pipeline on every family tested here.
    for family in ("cycle_chords", "grid", "erdos_renyi"):
        graph = make_family_instance(family, 40, seed=3)
        dist = distributed_two_ecss(graph, eps=0.5)
        model = RoundCostModel(dist.n, dist.diameter)
        assert dist.measured_rounds <= model.theorem_1_1_bound(0.5) * HIGH


def test_rounds_vs_model_reprices_a_measured_ledger_standalone():
    # Public API: a consumer can re-price a pipeline ledger without knowing
    # the pipeline's internal pricing override (layering defaults to one
    # Claim 4.10 layer per run; unknown names fail with a clear error).
    from repro.dist import rounds_vs_model

    graph = make_family_instance("grid", 30, seed=1)
    dist = distributed_two_ecss(graph, eps=0.5)
    model = RoundCostModel(dist.n, dist.diameter)
    rows = rounds_vs_model(dist.measured, model)
    assert rows[-1]["primitive"] == "TOTAL"
    assert {r["primitive"] for r in rows[:-1]} == set(dist.measured.by_name)
    from repro.dist import MeasuredPrimitives
    from repro.model.network import RunStats

    bogus = MeasuredPrimitives()
    bogus.add("teleportation", RunStats(rounds=1))
    with pytest.raises(KeyError, match="teleportation"):
        rounds_vs_model(bogus, model)


def test_ratio_bound_is_documented_constant():
    # The bound the tests enforce is the one the docs/artifact export.
    assert RATIO_BOUND == 8.0
