"""Unit tests for the LCA labelling scheme (label-only LCA computation)."""

from __future__ import annotations

import math
import random

import pytest

from repro.trees.lca_labels import LcaLabeling

from conftest import TREE_SHAPES, random_tree


@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_label_only_lca_matches_tree(shape):
    t = random_tree(45, seed=1, shape=shape)
    lab = LcaLabeling(t)
    for u in range(t.n):
        for v in range(t.n):
            assert lab.lca(u, v) == t.lca(u, v)


def test_label_only_lca_large_random():
    t = random_tree(1500, seed=2)
    lab = LcaLabeling(t)
    rng = random.Random(3)
    for _ in range(2000):
        u, v = rng.randrange(t.n), rng.randrange(t.n)
        assert lab.lca(u, v) == t.lca(u, v)


@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_ancestor_from_labels(shape):
    t = random_tree(40, seed=4, shape=shape)
    lab = LcaLabeling(t)
    for u in range(t.n):
        for v in range(t.n):
            assert lab.is_ancestor_from_labels(lab.label(u), lab.label(v)) == t.is_ancestor(u, v)


def test_label_size_bound():
    # O(log^2 n) bits: <= (2 + 3 log2 n) words of log2 n bits each.
    for shape in TREE_SHAPES:
        t = random_tree(500, seed=5, shape=shape)
        lab = LcaLabeling(t)
        word = (t.n - 1).bit_length()
        bound = word * (2 + 3 * (math.log2(t.n) + 1))
        assert lab.max_label_bits() <= bound


def test_labels_pure_data():
    # Labels must be self-contained: computing an LCA never touches the tree.
    t = random_tree(60, seed=6)
    lab = LcaLabeling(t)
    la, lb = lab.label(10), lab.label(37)
    expected = t.lca(10, 37)
    # Use the staticmethod on detached label copies.
    import copy

    assert LcaLabeling.lca_from_labels(copy.deepcopy(la), copy.deepcopy(lb)) == expected


def test_single_vertex_tree():
    from repro.trees.rooted import RootedTree

    t = RootedTree([-1], 0)
    lab = LcaLabeling(t)
    assert lab.lca(0, 0) == 0
