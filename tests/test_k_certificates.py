"""The reusable k-connectivity certificate, positively and adversarially.

:func:`repro.core.k_ecss.assert_k_edge_connected` is the feasibility
oracle of the k-ECSS test wall, so this suite checks the checker: it must
accept genuine spanning k-edge-connected subgraphs (graph or bare edge
list), and reject — with :class:`~repro.exceptions.InvariantViolation` —
subgraphs whose connectivity is only ``k - 1``, subgraphs carrying edges
the host graph does not have, and subgraphs that fail to span.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.k_ecss import approximate_k_ecss, assert_k_edge_connected
from repro.exceptions import InvariantViolation
from repro.graphs import cycle_with_chords

from test_k_ecss import k_connected_instance


class TestAccepts:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_whole_graph_accepted(self, k, seed):
        g = k_connected_instance(10, k, seed)
        assert_k_edge_connected(g, g, k)
        # The bare edge-iterable form must be equivalent.
        assert_k_edge_connected(g, list(g.edges()), k)

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", [4, 5])
    def test_solver_output_accepted(self, k, seed):
        g = k_connected_instance(11, k, seed)
        res = approximate_k_ecss(g, k)
        assert_k_edge_connected(g, res.edges, k)


class TestRejects:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cut_edge_removal_rejected(self, k, seed):
        # Thin one minimum cut down to k - 1 crossing edges: the result is
        # exactly (k-1)-edge-connected, so the certificate must reject it
        # at k while still accepting it at k - 1.
        g = k_connected_instance(10, k, seed)
        res = approximate_k_ecss(g, k)
        sub = nx.Graph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(res.edges)
        conn = nx.edge_connectivity(sub)
        assert conn >= k
        cut = sorted(tuple(sorted(e)) for e in nx.minimum_edge_cut(sub))
        to_remove = set(cut[: conn - (k - 1)])
        broken = [
            e for e in res.edges if tuple(sorted(e)) not in to_remove
        ]
        with pytest.raises(InvariantViolation, match="edge-connected"):
            assert_k_edge_connected(g, broken, k)
        assert_k_edge_connected(g, broken, k - 1)

    def test_cycle_is_not_three_connected(self):
        g = cycle_with_chords(12, 0, seed=1)  # a plain weighted cycle
        assert_k_edge_connected(g, g, 2)
        with pytest.raises(InvariantViolation, match="not 3-edge-connected"):
            assert_k_edge_connected(g, g, 3)

    def test_spanning_tree_rejected_at_two(self):
        g = k_connected_instance(9, 2, seed=6)
        tree_edges = list(nx.minimum_spanning_edges(g, data=False))
        assert_k_edge_connected(g, tree_edges, 1)
        with pytest.raises(InvariantViolation, match="not 2-edge-connected"):
            assert_k_edge_connected(g, tree_edges, 2)

    def test_foreign_edge_rejected(self):
        g = cycle_with_chords(10, 0, seed=2)
        missing = None
        for u in g.nodes():
            for v in g.nodes():
                if u < v and not g.has_edge(u, v):
                    missing = (u, v)
                    break
            if missing:
                break
        assert missing is not None
        with pytest.raises(InvariantViolation, match="not an edge"):
            assert_k_edge_connected(g, list(g.edges()) + [missing], 2)

    def test_stray_node_rejected(self):
        g = cycle_with_chords(8, 0, seed=3)
        sub = nx.Graph(g.edges())
        sub.add_node("ghost")
        with pytest.raises(InvariantViolation, match="not in the graph"):
            assert_k_edge_connected(g, sub, 2)

    def test_non_spanning_subgraph_rejected(self):
        # Leaving a node isolated breaks connectivity, hence any k >= 1.
        g = k_connected_instance(8, 2, seed=8)
        victim = max(g.nodes())
        edges = [e for e in g.edges() if victim not in e]
        with pytest.raises(InvariantViolation):
            assert_k_edge_connected(g, edges, 1)


class TestFuzz:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_subsets_agree_with_networkx(self, seed):
        rng = random.Random(seed)
        g = k_connected_instance(9, 2, seed=seed + 20)
        all_edges = sorted(g.edges())
        for _ in range(10):
            edges = [e for e in all_edges if rng.random() < 0.8]
            sub = nx.Graph()
            sub.add_nodes_from(g.nodes())
            sub.add_edges_from(edges)
            for k in (1, 2, 3):
                ok = (
                    sub.number_of_nodes() >= 2
                    and nx.is_connected(sub)
                    and nx.edge_connectivity(sub) >= k
                )
                if ok:
                    assert_k_edge_connected(g, edges, k)
                else:
                    with pytest.raises(InvariantViolation):
                        assert_k_edge_connected(g, edges, k)
