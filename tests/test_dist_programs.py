"""Unit tests for the message-level tree programs of ``repro.dist``.

Every program runs on the batched engine over a real network and is held
to its centralized counterpart: Euler labels vs ``RootedTree.tin/tout``,
the layering sweep vs ``Layering``, subtree sizes vs ``subtree_sizes()``,
ancestor sums vs ``TreePathOps.ancestor_sums`` (bit-identical floats),
chmin vs ``TreePathOps.chmin_over_paths``, and the gather vs the exact
item multiset.  Shapes include paths, stars, and brooms — the adversarial
cases for pipelining and queue backlogs.
"""

from __future__ import annotations

import random

import pytest

from repro.dist.programs import (
    AncestorSumDown,
    EulerTourLabels,
    PipelinedChminUp,
    PipelinedGather,
    SubtreeAggregate,
    layer_aggregate,
    subtree_size_aggregate,
)
from repro.decomp.layering import Layering
from repro.sim import BatchedNetwork
from repro.trees.pathops import TreePathOps

from conftest import TREE_SHAPES, random_tree, random_vertical_edges, tree_as_networkx


def _net(tree) -> BatchedNetwork:
    g = tree_as_networkx(tree)
    for _, _, d in g.edges(data=True):
        d["weight"] = 1.0
    return BatchedNetwork(g)


CASES = [(n, seed, shape) for n in (2, 9, 24, 60) for seed in (0, 3) for shape in TREE_SHAPES]


@pytest.mark.parametrize("n,seed,shape", CASES)
def test_euler_labels_match_rooted_tree(n, seed, shape):
    tree = random_tree(n, seed=seed, shape=shape)
    net = _net(tree)
    stats = net.run(EulerTourLabels(tree.parent, tree.root))
    assert stats.quiescent
    tin, tout = EulerTourLabels.results(net)
    assert tin == tree.tin
    assert tout == tree.tout
    # Rounds: one up sweep plus one down sweep.
    assert stats.rounds <= 2 * tree.height + 4


@pytest.mark.parametrize("n,seed,shape", CASES)
def test_layer_sweep_matches_layering(n, seed, shape):
    tree = random_tree(n, seed=seed, shape=shape)
    net = _net(tree)
    stats = net.run(layer_aggregate(tree.parent, tree.root))
    assert stats.quiescent
    values = SubtreeAggregate.results(net)
    layering = Layering(tree)
    for v in tree.tree_edges():
        assert int(values[v]) == layering.layer[v]


@pytest.mark.parametrize("n,seed,shape", CASES)
def test_subtree_size_sweep(n, seed, shape):
    tree = random_tree(n, seed=seed, shape=shape)
    net = _net(tree)
    stats = net.run(subtree_size_aggregate(tree.parent, tree.root))
    assert stats.quiescent
    values = SubtreeAggregate.results(net)
    assert [int(x) for x in values] == tree.subtree_sizes()
    assert stats.rounds <= tree.height + 3


@pytest.mark.parametrize("n,seed,shape", CASES)
def test_ancestor_sums_bit_identical(n, seed, shape):
    tree = random_tree(n, seed=seed, shape=shape)
    rng = random.Random(seed + 99)
    values = [rng.uniform(0.0, 10.0) for _ in range(n)]
    net = _net(tree)
    stats = net.run(AncestorSumDown(tree.parent, tree.root, values))
    assert stats.quiescent
    dist = AncestorSumDown.results(net)
    ref = TreePathOps(tree).ancestor_sums(values)
    assert dist == ref  # same association order: exact float equality
    assert stats.rounds <= tree.height + 3


@pytest.mark.parametrize("n,seed,shape", CASES)
def test_pipelined_chmin_matches_reference(n, seed, shape):
    tree = random_tree(n, seed=seed, shape=shape)
    if n < 3:
        pytest.skip("no vertical edges on tiny trees")
    rng = random.Random(seed + 7)
    updates = [
        (dec, anc, (rng.uniform(0.0, 50.0), idx))
        for idx, (dec, anc) in enumerate(
            random_vertical_edges(tree, 3 * n, seed=seed + 1)
        )
    ]
    net = _net(tree)
    stats = net.run(
        PipelinedChminUp(
            tree.parent, tree.depth,
            [(d, a, v) for d, a, v in updates],
        )
    )
    assert stats.quiescent
    dist = PipelinedChminUp.results(net, identity=None)
    ref = TreePathOps(tree).chmin_over_paths(updates)
    for t in tree.tree_edges():
        ref_val = ref.get(t)
        if ref_val == ref.identity:
            assert not dist.covered(t)
        else:
            assert dist.get(t) == ref_val


def test_pipelined_chmin_respects_congest_budget():
    # On a path, many items funnel through one edge: the budget still holds
    # because only one item crosses per round.
    tree = random_tree(40, seed=1, shape="path")
    updates = [(39, 0, (float(i), i)) for i in range(25)]
    net = _net(tree)
    stats = net.run(PipelinedChminUp(tree.parent, tree.depth, updates))
    assert stats.quiescent
    assert stats.max_words <= net.words_per_edge
    dist = PipelinedChminUp.results(net, identity=None)
    # Every edge of the path is covered by the minimum item.
    for t in tree.tree_edges():
        assert dist.get(t) == (0.0, 0)


def test_pipelined_gather_collects_everything():
    tree = random_tree(30, seed=2, shape="caterpillar")
    rng = random.Random(5)
    items_at = {}
    expected = []
    for v in range(1, tree.n, 3):
        item = (v, rng.randrange(100))
        items_at.setdefault(v, []).append(item)
        expected.append(item)
    net = _net(tree)
    stats = net.run(PipelinedGather(tree.parent, tree.root, items_at))
    assert stats.quiescent
    assert PipelinedGather.results(net, tree.root) == sorted(expected)
    # Pipelined: depth + number of items, not depth * items.
    assert stats.rounds <= tree.height + len(expected) + 3


def test_gather_root_items_need_no_messages():
    tree = random_tree(8, seed=0, shape="star")
    net = _net(tree)
    stats = net.run(PipelinedGather(tree.parent, tree.root, {0: [(0, 1)]}))
    assert stats.quiescent
    assert PipelinedGather.results(net, tree.root) == [(0, 1)]
    assert stats.messages == 0
