"""Tests for the CONGEST simulator and its node programs."""

from __future__ import annotations

import functools
import random

import networkx as nx
import pytest

from repro.exceptions import SimulationError
from repro.graphs import cycle_with_chords, erdos_renyi_2ec, grid_graph
from repro.model.mst import BoruvkaMST
from repro.model.network import Context, Network
from repro.model.programs import DistributedBFS, FloodMin, TreeAggregate, TreeBroadcast

from conftest import random_tree, tree_as_networkx


def make_network(g: nx.Graph, words: int = 4) -> Network:
    for u, v, d in g.edges(data=True):
        d.setdefault("weight", 1.0)
    return Network(g, words_per_edge=words)


class TestNetworkMechanics:
    def test_rejects_non_compact_labels(self):
        g = nx.Graph()
        g.add_edge(0, 5, weight=1.0)
        with pytest.raises(SimulationError):
            Network(g)

    def test_bandwidth_enforced(self):
        g = nx.path_graph(3)
        net = make_network(g, words=2)

        class Chatty:
            def setup(self, ctx):
                ctx.state["sent"] = False

            def step(self, ctx, inbox):
                if ctx.node == 0 and not ctx.state["sent"]:
                    ctx.state["sent"] = True
                    return {1: (1, 2, 3, 4, 5)}
                return {}

            def wants_to_continue(self, ctx):
                return False

        with pytest.raises(SimulationError, match="budget"):
            net.run(Chatty())

    def test_rejects_send_to_non_neighbor(self):
        g = nx.path_graph(3)
        net = make_network(g)

        class Teleport:
            def setup(self, ctx):
                pass

            def step(self, ctx, inbox):
                if ctx.node == 0:
                    return {2: (1,)}
                return {}

            def wants_to_continue(self, ctx):
                return False

        with pytest.raises(SimulationError, match="non-neighbor"):
            net.run(Teleport())

    def test_rejects_non_numeric_payload(self):
        g = nx.path_graph(2)
        net = make_network(g)

        class Texting:
            def setup(self, ctx):
                pass

            def step(self, ctx, inbox):
                return {1: ("hello",)} if ctx.node == 0 else {}

            def wants_to_continue(self, ctx):
                return False

        with pytest.raises(SimulationError, match="non-numeric"):
            net.run(Texting())


class TestBfs:
    @pytest.mark.parametrize("maker", [
        lambda: nx.path_graph(12),
        lambda: nx.cycle_graph(11),
        lambda: grid_graph(4, 5, seed=1),
        lambda: erdos_renyi_2ec(40, seed=2),
    ])
    def test_distances_match_networkx(self, maker):
        g = maker()
        net = make_network(g)
        stats = net.run(DistributedBFS(0))
        dist, parent = DistributedBFS.results(net)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in g.nodes():
            assert dist[v] == expected[v]
        assert stats.quiescent

    def test_round_count_is_eccentricity(self):
        g = nx.path_graph(20)
        net = make_network(g)
        stats = net.run(DistributedBFS(0))
        ecc = nx.eccentricity(g, 0)
        assert ecc <= stats.rounds <= ecc + 2

    def test_parents_form_bfs_tree(self):
        g = erdos_renyi_2ec(30, seed=3)
        net = make_network(g)
        net.run(DistributedBFS(0))
        dist, parent = DistributedBFS.results(net)
        for v in g.nodes():
            if v != 0:
                assert parent[v] in g[v]
                assert dist[parent[v]] == dist[v] - 1


class TestFloodMin:
    def test_component_minimum(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (3, 4)])
        g.add_node(5)
        for u, v, d in g.edges(data=True):
            d["weight"] = 1.0
        # active edges restricted to the graph's own edges
        net = Network(g)
        values = [(7,), (3,), (9,), (2,), (8,), (1,)]
        active = {v: sorted(g.neighbors(v)) for v in g.nodes()}
        net.run(FloodMin(values, active))
        res = FloodMin.results(net)
        assert [r[0] for r in res] == [3, 3, 3, 2, 2, 1]

    def test_rounds_close_to_diameter(self):
        g = nx.path_graph(30)
        for u, v, d in g.edges(data=True):
            d["weight"] = 1.0
        net = Network(g)
        values = [(v,) for v in range(30)]
        active = {v: sorted(g.neighbors(v)) for v in g.nodes()}
        stats = net.run(FloodMin(values, active))
        assert stats.rounds <= 31


class TestTreePrograms:
    def test_broadcast_reaches_all(self):
        t = random_tree(40, seed=4)
        g = tree_as_networkx(t)
        for u, v, d in g.edges(data=True):
            d["weight"] = 1.0
        net = Network(g)
        stats = net.run(TreeBroadcast(t.parent, t.root, (42,)))
        assert all(v == (42,) for v in TreeBroadcast.results(net))
        assert stats.rounds <= t.height + 2

    def test_aggregate_sum(self):
        t = random_tree(50, seed=5)
        g = tree_as_networkx(t)
        for u, v, d in g.edges(data=True):
            d["weight"] = 1.0
        net = Network(g)
        inputs = [(float(v),) for v in range(t.n)]
        combine = lambda a, b: (a[0] + b[0],)
        stats = net.run(TreeAggregate(t.parent, t.root, inputs, combine))
        total = TreeAggregate.result(net, t.root)
        assert total[0] == pytest.approx(sum(range(t.n)))
        assert stats.rounds <= t.height + 2

    def test_aggregate_min_and_xor(self):
        t = random_tree(30, seed=6)
        g = tree_as_networkx(t)
        for u, v, d in g.edges(data=True):
            d["weight"] = 1.0
        rng = random.Random(7)
        vals = [rng.randrange(1 << 20) for _ in range(t.n)]
        net = Network(g)
        net.run(TreeAggregate(t.parent, t.root, [(v,) for v in vals], lambda a, b: (min(a[0], b[0]),)))
        assert TreeAggregate.result(net, t.root)[0] == min(vals)
        net.reset_state()
        net.run(TreeAggregate(t.parent, t.root, [(v,) for v in vals], lambda a, b: (a[0] ^ b[0],)))
        expected = functools.reduce(lambda x, y: x ^ y, vals)
        assert TreeAggregate.result(net, t.root)[0] == expected


class TestBoruvka:
    @pytest.mark.parametrize("maker", [
        lambda: cycle_with_chords(25, 12, seed=1),
        lambda: erdos_renyi_2ec(35, seed=2),
        lambda: grid_graph(5, 5, seed=3),
    ])
    def test_matches_centralized_mst_weight(self, maker):
        g = maker()
        net = Network(g)
        out = BoruvkaMST(net).run()
        expected = nx.minimum_spanning_tree(g).size(weight="weight")
        assert out.weight == pytest.approx(expected)
        # the result is a spanning tree
        t = nx.Graph(out.edges)
        assert t.number_of_nodes() == g.number_of_nodes()
        assert t.number_of_edges() == g.number_of_nodes() - 1
        assert nx.is_connected(t)

    def test_phase_bound(self):
        g = erdos_renyi_2ec(64, seed=4)
        out = BoruvkaMST(Network(g)).run()
        assert out.phases <= 8  # log2(64) + margin

    def test_rounds_recorded(self):
        g = cycle_with_chords(20, 5, seed=5)
        out = BoruvkaMST(Network(g)).run()
        assert out.stats.rounds > 0
        assert out.stats.messages > 0

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        out = BoruvkaMST(Network(g)).run()
        assert out.edges == []
        assert out.weight == 0
