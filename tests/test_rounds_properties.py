"""Property/fuzz tests for the Level-M cost model (`repro.core.rounds`).

Invariants: ``breakdown`` is an exact decomposition of ``total_rounds``,
``log_star`` is monotone and agrees with hand-computed anchors, every
priced primitive is positive and additive in its count, and the Theorem
1.1 bound dominates the rounds actually measured by the simulation engine
on small instances (via :class:`repro.sim.ScenarioRunner`).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.rounds import PrimitiveLog, RoundCostModel, log_star
from repro.sim import ScenarioRunner

PRIMITIVES = [
    "mst",
    "lca_labels",
    "segments_build",
    "aggregate",
    "layering_layer",
    "global_mis_gather",
    "petals",
    "segment_scan",
    "broadcast",
]


def random_log(rng: random.Random, max_count: int = 50) -> PrimitiveLog:
    log = PrimitiveLog()
    for p in PRIMITIVES:
        if rng.random() < 0.7:
            log.record(p, rng.randrange(1, max_count))
    return log


class TestBreakdownDecomposition:
    @pytest.mark.parametrize("seed", range(25))
    def test_total_equals_breakdown_sum(self, seed):
        rng = random.Random(seed)
        model = RoundCostModel(n=rng.randrange(2, 5000), diameter=rng.randrange(1, 200))
        log = random_log(rng)
        breakdown = model.breakdown(log)
        total = breakdown.pop("TOTAL")
        assert total == pytest.approx(sum(breakdown.values()))
        assert total == pytest.approx(model.total_rounds(log))
        assert set(breakdown) == set(log.counts)

    def test_empty_log_prices_to_zero(self):
        model = RoundCostModel(10, 3)
        log = PrimitiveLog()
        assert model.total_rounds(log) == 0
        assert model.breakdown(log) == {"TOTAL": 0}

    @pytest.mark.parametrize("seed", range(10))
    def test_costs_positive_and_additive(self, seed):
        rng = random.Random(1000 + seed)
        model = RoundCostModel(n=rng.randrange(4, 3000), diameter=rng.randrange(1, 100))
        for p in PRIMITIVES:
            assert model.cost_of(p) > 0
            one, many = PrimitiveLog(), PrimitiveLog()
            one.record(p)
            k = rng.randrange(2, 20)
            many.record(p, k)
            assert model.total_rounds(many) == pytest.approx(
                k * model.total_rounds(one)
            )

    def test_unknown_primitive_raises(self):
        model = RoundCostModel(10, 3)
        with pytest.raises(KeyError, match="teleport"):
            model.cost_of("teleport")
        bad = PrimitiveLog()
        bad.record("teleport")
        with pytest.raises(KeyError):
            model.total_rounds(bad)

    def test_merge_prices_like_sum(self):
        rng = random.Random(7)
        model = RoundCostModel(500, 12)
        a, b = random_log(rng), random_log(rng)
        merged = PrimitiveLog()
        merged.merge(a)
        merged.merge(b)
        assert model.total_rounds(merged) == pytest.approx(
            model.total_rounds(a) + model.total_rounds(b)
        )


class TestLogStar:
    def test_anchor_values(self):
        # log*(2)=1, log*(4)=2, log*(16)=3, log*(65536)=4
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(1) == 1  # clamped floor

    def test_monotone_over_range(self):
        prev = 0
        for n in range(1, 3000):
            cur = log_star(n)
            assert cur >= prev
            prev = cur

    @pytest.mark.parametrize("seed", range(10))
    def test_monotone_random_pairs(self, seed):
        rng = random.Random(seed)
        a = rng.uniform(1, 1e12)
        b = rng.uniform(1, 1e12)
        lo, hi = min(a, b), max(a, b)
        assert log_star(lo) <= log_star(hi)

    def test_grows_without_bound_slowly(self):
        assert log_star(2**70000) >= 5
        assert log_star(1e12) <= 5


class TestTheoremBoundDominance:
    def test_bound_dominates_measured_rounds_small_instances(self):
        runner = ScenarioRunner(eps=0.5)
        results = runner.sweep(
            families=("cycle_chords", "erdos_renyi", "grid", "hub_cycle"),
            sizes=(20, 40),
            seeds=(1, 2),
        )
        assert len(results) >= 16
        for res in results:
            assert res.stats.quiescent
            assert res.within_thm11, res.row()
            assert res.within_price, res.row()
            # the priced rounds themselves sit under the theorem envelope
            assert res.priced_rounds <= res.thm11_bound

    @pytest.mark.parametrize("eps", [0.1, 0.5, 1.0, 5.0])
    def test_bound_shape(self, eps):
        for n, d in [(16, 3), (400, 25), (2048, 60)]:
            model = RoundCostModel(n, d)
            bound = model.theorem_1_1_bound(eps)
            assert bound == pytest.approx(
                (model.diameter + model.sqrt_n) * model.log_n**2 / eps
            )
            assert model.lower_bound() <= bound
            assert model.theorem_1_1_bound(2 * eps) == pytest.approx(bound / 2)
