"""Tests for the primal-dual forward phase (Sections 3.4/4.4, Lemma 4.12)."""

from __future__ import annotations

import math

import pytest

from repro.core.certificates import dual_slacks
from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.exceptions import NotTwoEdgeConnectedError

from conftest import TREE_SHAPES, random_tap_instance, random_tree


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("eps", [0.1, 0.5])
class TestForwardInvariants:
    def test_everything_covered(self, shape, eps):
        inst = random_tap_instance(60, 120, seed=1, shape=shape)
        fwd = forward_phase(inst, eps=eps)
        counts = inst.ops.coverage_counts(inst.edges[e].pair for e in fwd.added)
        for t in inst.tree.tree_edges():
            assert counts[t] > 0

    def test_dual_feasible_up_to_eps(self, shape, eps):
        # s(e) <= (1+eps) w(e) for every link.
        inst = random_tap_instance(60, 120, seed=2, shape=shape)
        fwd = forward_phase(inst, eps=eps)
        for e, ratio in zip(inst.edges, dual_slacks(inst, fwd.y)):
            if e.weight > 0:
                assert ratio <= (1 + eps) * (1 + 1e-9)

    def test_added_edges_tight(self, shape, eps):
        inst = random_tap_instance(60, 120, seed=3, shape=shape)
        fwd = forward_phase(inst, eps=eps)
        cum = inst.ops.ancestor_sums(fwd.y)
        for eid in fwd.added:
            e = inst.edges[eid]
            if e.weight > 0:
                s_e = cum[e.dec] - cum[e.anc]
                assert s_e >= e.weight * (1 - 1e-9)

    def test_iteration_bound(self, shape, eps):
        # Lemma 4.12: at most log_{1+eps}(n) + O(1) iterations per epoch.
        inst = random_tap_instance(80, 150, seed=4, shape=shape)
        fwd = forward_phase(inst, eps=eps)
        bound = math.log(inst.tree.n) / math.log1p(eps) + 2
        assert fwd.max_iterations <= bound


class TestDualSupport:
    def test_positive_duals_only_on_r_edges(self):
        inst = random_tap_instance(70, 140, seed=5)
        fwd = forward_phase(inst, eps=0.3)
        r_all = {t for r in fwd.r_sets.values() for t in r}
        for t in inst.tree.tree_edges():
            if fwd.y[t] > 0:
                assert t in r_all

    def test_r_edges_get_positive_dual(self):
        inst = random_tap_instance(70, 140, seed=6)
        fwd = forward_phase(inst, eps=0.3)
        for k, r_k in fwd.r_sets.items():
            for t in r_k:
                assert fwd.y[t] > 0

    def test_first_cover_epoch_at_most_layer(self):
        # A layer-j edge is covered during epoch j at the latest.
        inst = random_tap_instance(70, 140, seed=7)
        fwd = forward_phase(inst, eps=0.3)
        for t in inst.tree.tree_edges():
            assert 0 <= fwd.first_cover_epoch[t] <= inst.layering.layer[t]

    def test_epoch_added_matches_added(self):
        inst = random_tap_instance(50, 100, seed=8)
        fwd = forward_phase(inst, eps=0.3)
        assert set(fwd.epoch_added) == set(fwd.added)
        assert len(set(fwd.added)) == len(fwd.added)


class TestEdgeCases:
    def test_infeasible_raises(self):
        tree = random_tree(10, shape="path")
        # links cover only the bottom half of the path
        inst = TAPInstance.from_links(tree, [(9, 5, 1.0)])
        with pytest.raises(NotTwoEdgeConnectedError):
            forward_phase(inst)

    def test_bad_eps(self):
        inst = random_tap_instance(10, 20, seed=9)
        with pytest.raises(ValueError):
            forward_phase(inst, eps=0.0)

    def test_zero_weight_links_preadded(self):
        tree = random_tree(12, shape="path")
        links = [(11, 0, 0.0), (6, 2, 5.0)]
        inst = TAPInstance.from_links(tree, links)
        fwd = forward_phase(inst, eps=0.5)
        assert fwd.epoch_added[0] == 0  # the zero-weight link, before epoch 1
        assert all(fwd.y[t] == 0.0 for t in tree.tree_edges())

    def test_single_link_covering_all(self):
        tree = random_tree(15, shape="path")
        inst = TAPInstance.from_links(tree, [(14, 0, 3.0)])
        fwd = forward_phase(inst, eps=0.25)
        assert fwd.added == [0]
        assert sum(fwd.y) == pytest.approx(3.0, rel=1e-6)

    def test_parallel_links_cheapest_becomes_tight_first(self):
        tree = random_tree(8, shape="path")
        inst = TAPInstance.from_links(tree, [(7, 0, 10.0), (7, 0, 2.0)])
        fwd = forward_phase(inst, eps=0.25)
        assert fwd.added[0] == 1  # the cheap one
