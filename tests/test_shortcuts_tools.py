"""Tests for the fragment hierarchy and Theorems 5.1/5.2/5.3 tools."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.shortcuts.partition import Partition, mst_fragment_partition, random_connected_partition
from repro.shortcuts.providers import (
    BestOfShortcuts,
    SizeThresholdShortcuts,
    TreeRestrictedShortcuts,
    TrivialShortcuts,
)
from repro.shortcuts.subroutines import CoverCounter55, CoverDetector
from repro.shortcuts.tools import FragmentHierarchy, ShortcutToolkit
from repro.graphs import erdos_renyi_2ec, grid_graph
from repro.trees.heavy_light import HeavyLightDecomposition

from conftest import TREE_SHAPES, random_tree, tree_as_networkx


class TestHierarchy:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_levels_logarithmic(self, shape):
        t = random_tree(300, seed=1, shape=shape)
        h = FragmentHierarchy(t)
        assert h.num_levels <= math.log2(300) + 3

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_partitions_valid_and_connected(self, shape):
        t = random_tree(120, seed=2, shape=shape)
        g = tree_as_networkx(t)
        h = FragmentHierarchy(t)
        for level in h.levels:
            covered = sorted(v for part in level.partition.parts for v in part)
            assert covered == list(range(t.n))
            level.partition.validate_connected(g)

    def test_top_level_single_fragment(self):
        t = random_tree(90, seed=3)
        h = FragmentHierarchy(t)
        assert len(h.levels[-1].partition) == 1
        assert all(f == t.root for f in h.levels[-1].frag)

    def test_fragment_roots_are_members(self):
        t = random_tree(90, seed=4)
        h = FragmentHierarchy(t)
        for level in h.levels:
            for part in level.partition.parts:
                root = min(part, key=lambda v: t.depth[v])
                assert level.frag[root] == root
                for v in part:
                    assert t.is_ancestor(root, v)


class TestSums:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_descendants_sum(self, shape):
        t = random_tree(80, seed=5, shape=shape)
        rng = random.Random(6)
        vals = [rng.randint(0, 50) for _ in range(t.n)]
        tk = ShortcutToolkit(FragmentHierarchy(t))
        got = tk.descendants_sum(list(vals))
        sizes = t.subtree_sizes()
        # reference: accumulate bottom-up
        ref = list(vals)
        for v in reversed(t.order):
            p = t.parent[v]
            if p >= 0:
                ref[p] += ref[v]
        assert got == ref
        assert tk.partwise_ops > 0

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_ancestors_sum(self, shape):
        t = random_tree(80, seed=7, shape=shape)
        rng = random.Random(8)
        vals = [rng.randint(0, 50) for _ in range(t.n)]
        tk = ShortcutToolkit(FragmentHierarchy(t))
        got = tk.ancestors_sum(list(vals))
        ref = [0] * t.n
        for v in t.order:
            p = t.parent[v]
            ref[v] = vals[v] + (ref[p] if p >= 0 else 0)
        assert got == ref

    def test_ancestors_sum_noncommutative_order(self):
        # combine(prefix, suffix) with list concatenation must produce
        # root-first sequences.
        t = random_tree(40, seed=9)
        tk = ShortcutToolkit(FragmentHierarchy(t))
        got = tk.ancestors_sum([(v,) for v in range(t.n)], combine=lambda a, b: a + b)
        for v in range(t.n):
            chain = []
            x = v
            while x != -1:
                chain.append(x)
                x = t.parent[x]
            assert list(got[v]) == chain[::-1]

    def test_min_aggregate(self):
        t = random_tree(60, seed=10)
        rng = random.Random(11)
        vals = [rng.randint(0, 1000) for _ in range(t.n)]
        tk = ShortcutToolkit(FragmentHierarchy(t))
        got = tk.descendants_sum(list(vals), combine=min)
        ref = list(vals)
        for v in reversed(t.order):
            p = t.parent[v]
            if p >= 0:
                ref[p] = min(ref[p], ref[v])
        assert got == ref


class TestDistributedHld:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_matches_centralized_majority_hld(self, shape):
        t = random_tree(100, seed=12, shape=shape)
        hld = ShortcutToolkit(FragmentHierarchy(t)).heavy_light()
        ref = HeavyLightDecomposition(t, mode="majority")
        sizes = t.subtree_sizes()
        assert hld.subtree_size == sizes
        for v in range(t.n):
            assert hld.path_len[v] == t.depth[v] + 1
            if v != t.root:
                assert hld.heavy[v] == ref.is_heavy_edge(v)

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_lca_from_light_lists(self, shape):
        t = random_tree(60, seed=13, shape=shape)
        hld = ShortcutToolkit(FragmentHierarchy(t)).heavy_light()
        for u in range(t.n):
            for v in range(t.n):
                assert hld.lca(u, v) == t.lca(u, v)

    def test_light_list_bound(self):
        t = random_tree(500, seed=14)
        hld = ShortcutToolkit(FragmentHierarchy(t)).heavy_light()
        assert hld.max_light_list() <= math.log2(500) + 1


class TestSubroutines:
    def test_cover_detector_exact_on_uncovered(self):
        # One-sided error: reported-uncovered must be exactly the uncovered.
        t = random_tree(70, seed=15)
        tk = ShortcutToolkit(FragmentHierarchy(t))
        det = CoverDetector(tk, seed=16)
        rng = random.Random(17)
        s_edges = []
        for _ in range(25):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            if u != v:
                s_edges.append((u, v))
        got = det.covered_edges(s_edges)
        truth = set()
        for u, v in s_edges:
            truth.update(t.path_edges(u, v))
        for v in t.tree_edges():
            # w.h.p. equality; one-sided: got=True implies truly covered
            if got[v]:
                assert v in truth
            if v not in truth:
                assert not got[v]
        # and with 10 log n bits the false-negative rate is ~0 in practice:
        assert all(got[v] for v in truth)

    def test_cover_counter_exact(self):
        t = random_tree(70, seed=18)
        tk = ShortcutToolkit(FragmentHierarchy(t))
        counter = CoverCounter55(tk)
        rng = random.Random(19)
        marked = [False] * t.n
        for v in t.tree_edges():
            marked[v] = rng.random() < 0.5
        edges = []
        for _ in range(60):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            edges.append((u, v))
        got = counter.counts(marked, edges)
        for (u, v), c in zip(edges, got):
            expected = sum(1 for e in t.path_edges(u, v) if marked[e])
            assert c == expected


class TestProvidersAndPartitions:
    def test_partition_rejects_overlap(self):
        with pytest.raises(ValueError):
            Partition(parts=[[0, 1], [1, 2]])

    def test_mst_fragment_partition_valid(self):
        g = erdos_renyi_2ec(100, seed=20)
        p = mst_fragment_partition(g, 10, seed=21)
        assert sorted(v for part in p.parts for v in part) == sorted(g.nodes())
        p.validate_connected(g)

    def test_random_connected_partition_valid(self):
        g = grid_graph(8, 8, seed=22)
        p = random_connected_partition(g, 8, seed=23)
        assert sorted(v for part in p.parts for v in part) == sorted(g.nodes())
        p.validate_connected(g)

    def test_trivial_dilation_is_part_diameter(self):
        g = grid_graph(6, 6, seed=24)
        p = mst_fragment_partition(g, 6, seed=25)
        a = TrivialShortcuts().assign(g, p)
        assert a.alpha >= 1
        assert a.beta >= 1

    def test_tree_restricted_dilation_at_most_2d(self):
        g = grid_graph(7, 7, seed=26)
        d = nx.diameter(g)
        p = mst_fragment_partition(g, 7, seed=27)
        a = TreeRestrictedShortcuts().assign(g, p)
        assert a.beta <= 2 * d

    def test_size_threshold_congestion_bound(self):
        g = erdos_renyi_2ec(100, seed=28)
        p = mst_fragment_partition(g, 10, seed=29)
        a = SizeThresholdShortcuts().assign(g, p)
        big_parts = sum(1 for part in p.parts if len(part) >= 10)
        assert a.alpha <= big_parts + 1

    def test_best_of_picks_minimum(self):
        g = grid_graph(6, 6, seed=30)
        p = mst_fragment_partition(g, 6, seed=31)
        best = BestOfShortcuts().assign(g, p)
        st = SizeThresholdShortcuts().assign(g, p)
        tr = TreeRestrictedShortcuts().assign(g, p)
        assert best.quality <= min(st.quality, tr.quality)
