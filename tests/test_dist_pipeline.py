"""Differential suite: the message-level pipeline vs ``backend="reference"``.

The acceptance bar of the dist layer: across every graph family, size, and
seed in the grid below (>= 100 cases), :func:`repro.dist.distributed_two_ecss`
must produce a **bit-identical** solution — same chosen edges, same weight,
same certified ratio — to the centralized reference solver, while every
primitive actually executes as messages on the batched engine.  Lossy-mode
composition (FailurePlan / ScenarioRunner) is covered at the end.
"""

from __future__ import annotations

import pytest

from repro.core.tecss import approximate_two_ecss
from repro.dist import dist_specs, distributed_two_ecss
from repro.graphs.families import make_family_instance
from repro.sim import FailurePlan, ScenarioRunner, random_failure_plan

FAMILIES = ("cycle_chords", "erdos_renyi", "grid", "theta", "hub_cycle", "caterpillar")
SIZES = (18, 30)
SEEDS = tuple(range(1, 10))

GRID = [
    (family, n, seed) for family in FAMILIES for n in SIZES for seed in SEEDS
]
assert len(GRID) >= 100  # the differential suite's documented floor


@pytest.mark.parametrize("family,n,seed", GRID)
def test_pipeline_identical_to_reference(family, n, seed):
    graph = make_family_instance(family, n, seed=seed)
    dist = distributed_two_ecss(graph, eps=0.5)
    ref = approximate_two_ecss(graph, eps=0.5, backend="reference")
    assert dist.result.edges == ref.edges
    assert dist.result.weight == ref.weight
    assert dist.result.certified_ratio == ref.certified_ratio
    assert dist.result.augmentation.virtual_eids == ref.augmentation.virtual_eids
    # Strict mode: every distributed value matched its centralized twin.
    assert dist.strict and dist.mismatches == 0
    # Every primitive genuinely ran on the engine.
    assert dist.measured.by_name["mst"].runs == 1
    assert dist.measured.by_name["aggregate"].runs > 0
    assert dist.measured_rounds > 0


@pytest.mark.parametrize("variant", ["improved", "basic"])
@pytest.mark.parametrize("segmented", [True, False])
def test_pipeline_variants_match_reference(variant, segmented):
    graph = make_family_instance("grid", 30, seed=4)
    dist = distributed_two_ecss(graph, eps=0.25, variant=variant, segmented=segmented)
    ref = approximate_two_ecss(
        graph, eps=0.25, variant=variant, segmented=segmented, backend="reference"
    )
    assert dist.result.edges == ref.edges
    assert dist.result.weight == ref.weight
    assert dist.result.guarantee == ref.guarantee


def test_pipeline_matches_fast_backend_too():
    # fast and reference are bit-identical (PR 2), so the dist pipeline
    # transitively matches the vectorized kernels as well.
    graph = make_family_instance("erdos_renyi", 40, seed=7)
    dist = distributed_two_ecss(graph, eps=0.5)
    fast = approximate_two_ecss(graph, eps=0.5, backend="fast")
    assert dist.result.edges == fast.edges
    assert dist.result.weight == fast.weight


def test_pipeline_counts_solver_primitives():
    # The solver's own PrimitiveLog and the measured ledger agree on the
    # setup primitives; measured aggregate runs are at least the aggregates
    # the forward/reverse phases logged (certificates add a few more).
    graph = make_family_instance("cycle_chords", 30, seed=2)
    dist = distributed_two_ecss(graph, eps=0.5)
    log = dist.result.augmentation.log
    assert dist.measured.by_name["lca_labels"].runs == log["lca_labels"]
    assert dist.measured.by_name["aggregate"].runs >= log["aggregate"]
    if log["global_mis_gather"]:
        assert (
            dist.measured.by_name["global_mis_gather"].runs
            == log["global_mis_gather"]
        )


def test_pipeline_comparison_rows_are_priced():
    graph = make_family_instance("grid", 30, seed=1)
    dist = distributed_two_ecss(graph, eps=0.5)
    rows = dist.rows()
    assert rows[-1]["primitive"] == "TOTAL"
    for row in rows:
        assert row["priced_rounds"] > 0
        assert row["measured_rounds"] >= 0
    assert dist.priced_rounds == pytest.approx(
        sum(r["priced_rounds"] for r in rows[:-1])
    )
    # The report renderer consumes the same rows (benchmarks write this).
    from repro.analysis.tables import rounds_vs_model_table

    table = rounds_vs_model_table([dist])
    assert "TOTAL" in table and "measured_rounds" in table
    assert table.count("\n") >= len(rows) + 2


class TestLossyComposition:
    """FailurePlan / ScenarioRunner composition — the scenarios only the
    message-level pipeline can express."""

    def test_lossy_run_counts_mismatches_and_still_solves(self):
        graph = make_family_instance("grid", 36, seed=1)
        plan = random_failure_plan(graph, p=0.15, max_rounds=40, seed=3)
        dist = distributed_two_ecss(graph, eps=0.5, failures=plan)
        assert not dist.strict
        assert dist.mismatches > 0  # loss corrupted distributed values...
        ref = approximate_two_ecss(graph, eps=0.5, backend="reference")
        assert dist.result.edges == ref.edges  # ...but the solution holds
        assert dist.result.weight == ref.weight

    def test_lossy_plan_is_not_mutated_by_the_pipeline(self):
        import copy

        graph = make_family_instance("cycle_chords", 24, seed=2)
        plan = random_failure_plan(graph, p=0.1, max_rounds=30, seed=1)
        before = copy.deepcopy(plan)
        distributed_two_ecss(graph, eps=0.5, failures=plan)
        assert plan == before

    def test_severed_tree_edge_corrupts_setup_sweeps(self):
        graph = make_family_instance("grid", 36, seed=1)
        clean = distributed_two_ecss(graph, eps=0.5)
        u, v = clean.result.mst_edges[0]
        plan = FailurePlan().fail(u, v)
        dist = distributed_two_ecss(graph, eps=0.5, failures=plan)
        # A permanently dead MST edge starves every sweep that crosses it.
        assert dist.mismatch_counts.get("lca_labels", 0) > 0
        assert dist.result.weight == clean.result.weight

    def test_scenario_runner_sweeps_dist_specs(self):
        runner = ScenarioRunner()
        results = runner.sweep(
            families=["cycle_chords"], sizes=[24], seeds=[1, 2],
            specs=dist_specs(),
        )
        assert len(results) == 2 * len(dist_specs())
        for res in results:
            assert res.stats.quiescent
            assert res.stats.dropped == 0
            assert res.within_thm11
            row = res.row()
            assert row["program"] in {
                "euler_labels", "layering_sweep", "subtree_sizes", "ancestor_sums"
            }

    def test_scenario_runner_rejects_failures_on_non_batched_engines(self):
        plan = FailurePlan().fail(0, 1)
        with pytest.raises(ValueError, match="batched"):
            ScenarioRunner(engine="legacy", failures=plan)
        with pytest.raises(ValueError, match="batched"):
            ScenarioRunner(engine=lambda g, w: None, failures=plan)

    def test_scenario_runner_dist_specs_under_failures(self):
        graph = make_family_instance("cycle_chords", 24, seed=1)
        plan = random_failure_plan(graph, p=0.3, max_rounds=10, seed=2)
        runner = ScenarioRunner(failures=plan)
        spec = next(s for s in dist_specs() if s.name == "euler_labels")
        res = runner.run_one(graph, spec, family="cycle_chords", seed=1)
        assert res.stats.quiescent  # lossy sweeps stall but still terminate
        assert res.stats.dropped > 0
