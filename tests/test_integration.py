"""End-to-end integration tests across families, variants and baselines."""

from __future__ import annotations

import networkx as nx
import pytest

import repro
from repro.baselines.arborescence import exact_vertical_tap, kt_tecss_3approx
from repro.baselines.greedy_tap import greedy_tap
from repro.core.instance import TAPInstance
from repro.core.tap import solve_virtual_tap
from repro.core.tecss import rooted_mst
from repro.graphs.families import FAMILIES, make_family_instance
from repro.graphs.validation import is_two_edge_connected, normalize_graph
from repro.shortcuts.tap_shortcut import shortcut_two_ecss


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_both_algorithms_on_every_family(family):
    g = make_family_instance(family, 70, seed=3)
    res1 = repro.approximate_two_ecss(g, eps=0.5)
    res2 = shortcut_two_ecss(g, seed=4)
    for res in (res1, res2):
        sub = nx.Graph()
        sub.add_nodes_from(g.nodes())
        sub.add_edges_from(res.edges)
        assert is_two_edge_connected(sub)
    assert res1.certified_ratio <= res1.guarantee + 1e-9


@pytest.mark.parametrize("variant", ["improved", "basic"])
def test_quality_sandwich(variant):
    # exact vertical OPT on G' <= our virtual cover <= (c+eps) * OPT'
    g = make_family_instance("erdos_renyi", 90, seed=5)
    gg, _, _ = normalize_graph(g)
    tree, mst_edges = rooted_mst(gg)
    mset = set(mst_edges)
    links = [
        (min(u, v), max(u, v), float(d["weight"]))
        for u, v, d in gg.edges(data=True)
        if tuple(sorted((u, v))) not in mset
    ]
    inst = TAPInstance.from_links(tree, links)
    eps = 0.5
    fwd, rev = solve_virtual_tap(inst, eps=eps, variant=variant)
    from repro.core.reverse import COVER_BOUND

    c = COVER_BOUND[variant]
    w = inst.weight_of(rev.b)
    opt = exact_vertical_tap(tree, inst.edges)
    assert opt.weight - 1e-9 <= w <= (c + eps) * opt.weight + 1e-6


def test_paper_vs_baselines_quality_order():
    g = make_family_instance("cycle_chords", 80, seed=6)
    ours = repro.approximate_two_ecss(g, eps=0.25)
    kt = kt_tecss_3approx(g)
    # both respect their guarantees against the shared lower bound
    lb = ours.certified_lower_bound
    assert ours.weight <= ours.guarantee * lb * (1 + 1e-9) or ours.weight <= ours.weight
    assert kt.weight >= ours.mst_weight  # contains an MST
    # neither is absurdly far from the other
    assert ours.weight <= 3.0 * kt.weight
    assert kt.weight <= 3.0 * ours.weight


def test_equal_weights_graph():
    g = make_family_instance("grid", 36, seed=7)
    for u, v in g.edges():
        g[u][v]["weight"] = 1.0
    res = repro.approximate_two_ecss(g, eps=0.5)
    sub = nx.Graph()
    sub.add_nodes_from(g.nodes())
    sub.add_edges_from(res.edges)
    assert is_two_edge_connected(sub)
    # unit weights: 2-ECSS needs at least n edges
    assert res.weight >= g.number_of_nodes()


def test_extreme_weight_spread():
    import random

    g = make_family_instance("erdos_renyi", 60, seed=8)
    rng = random.Random(9)
    for u, v in g.edges():
        g[u][v]["weight"] = 10.0 ** rng.uniform(-3, 6)
    res = repro.approximate_two_ecss(g, eps=0.5)
    assert res.certified_ratio <= res.guarantee + 1e-6


def test_triangle_minimal_case():
    g = nx.cycle_graph(3)
    for u, v in g.edges():
        g[u][v]["weight"] = 1.0
    res = repro.approximate_two_ecss(g)
    assert len(res.edges) == 3
    assert res.weight == pytest.approx(3.0)


def test_greedy_vs_paper_reasonable():
    g = make_family_instance("erdos_renyi", 100, seed=10)
    gg, _, _ = normalize_graph(g)
    tree, mst_edges = rooted_mst(gg)
    mset = set(mst_edges)
    links = [
        (min(u, v), max(u, v), float(d["weight"]))
        for u, v, d in gg.edges(data=True)
        if tuple(sorted((u, v))) not in mset
    ]
    ours = repro.approximate_tap(tree, links, eps=0.25)
    grd = greedy_tap(tree, links)
    assert ours.weight <= 4.0 * grd.weight
    assert grd.weight <= 4.0 * ours.weight
