"""Differential suite: ``backend="fast"`` must equal ``backend="reference"``.

The fast kernels promise *bit-identical* results, not just statistically
indistinguishable ones.  This suite runs both backends over a seeded grid
of graph-family instances (well over the required 20) plus adversarial
TAP instances with tiny segments (the regime where the reverse-delete
cross-segment machinery and the cleaning phase actually fire) and asserts
equality of:

* every :class:`~repro.core.forward.ForwardResult` field — dual values
  ``y`` included, compared with ``==`` (no tolerance);
* the reverse-delete cover ``B``, the anchor list, and the cleaning
  removals;
* the end-to-end :class:`~repro.core.result.TapResult` — augmentation
  links, weights, dual bound, primitive log — and the 2-ECSS edge set;
* the virtual-edge sequences themselves (column-oriented vs object list);
* error behavior on infeasible (bridged) inputs.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

import networkx as nx

from conftest import random_tap_instance

from repro.analysis.experiments import _adversarial_tap_instance, _links_of
from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.core.reverse import reverse_delete
from repro.core.tap import approximate_tap
from repro.core.tecss import approximate_two_ecss
from repro.exceptions import NotTwoEdgeConnectedError
from repro.graphs.families import make_family_instance

# 5 families x 2 sizes x 2 seeds = 20 graph instances, plus the
# adversarial and tiny-segment grids below.
FAMILY_GRID = [
    (family, n, seed)
    for family in ("cycle_chords", "erdos_renyi", "grid", "hub_cycle", "ktree2")
    for n in (60, 140)
    for seed in (1, 2)
]


def _tap_instance(family: str, n: int, seed: int) -> tuple:
    graph = make_family_instance(family, n, seed=seed)
    _, tree, links = _links_of(graph)
    return graph, tree, links


def assert_forward_equal(ref, fast) -> None:
    assert fast.y == ref.y  # exact float equality: the kernels are bit-identical
    assert fast.added == ref.added
    assert fast.epoch_added == ref.epoch_added
    assert fast.first_cover_epoch == ref.first_cover_epoch
    assert fast.r_sets == ref.r_sets
    assert fast.iterations_per_epoch == ref.iterations_per_epoch
    assert fast.log.counts == ref.log.counts


def assert_reverse_equal(ref, fast) -> None:
    assert fast.b == ref.b
    assert fast.anchors == ref.anchors
    assert fast.cleaning_removals == ref.cleaning_removals
    assert fast.x_by_epoch == ref.x_by_epoch


@pytest.mark.parametrize("family,n,seed", FAMILY_GRID)
def test_family_grid_bit_identical(family: str, n: int, seed: int) -> None:
    graph, tree, links = _tap_instance(family, n, seed)
    inst = TAPInstance.from_links(tree, links)
    fwd_ref = forward_phase(inst, eps=0.25)
    fwd_fast = forward_phase(inst, eps=0.25, backend="fast")
    assert_forward_equal(fwd_ref, fwd_fast)

    rev_ref = reverse_delete(inst, fwd_ref, variant="improved")
    rev_fast = reverse_delete(inst, fwd_ref, variant="improved", backend="fast")
    assert_reverse_equal(rev_ref, rev_fast)

    tap_ref = approximate_tap(tree, links, eps=0.5)
    tap_fast = approximate_tap(tree, links, eps=0.5, backend="fast")
    assert tap_fast.links == tap_ref.links
    assert tap_fast.weight == tap_ref.weight
    assert tap_fast.virtual_eids == tap_ref.virtual_eids
    assert tap_fast.virtual_weight == tap_ref.virtual_weight
    assert tap_fast.dual_bound == tap_ref.dual_bound
    assert tap_fast.max_coverage_of_dual_edges == tap_ref.max_coverage_of_dual_edges
    assert tap_fast.log.counts == tap_ref.log.counts


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("variant", ["basic", "improved"])
def test_adversarial_tiny_segments(seed: int, variant: str) -> None:
    """Path-heavy instances with tiny segments: the cleaning-phase regime."""
    src = _adversarial_tap_instance(130, seed)
    inst = TAPInstance(src.tree, list(src.edges), segment_size=5)
    fwd_ref = forward_phase(inst, eps=0.1)
    fwd_fast = forward_phase(inst, eps=0.1, backend="fast")
    assert_forward_equal(fwd_ref, fwd_fast)
    rev_ref = reverse_delete(inst, fwd_ref, variant=variant)
    rev_fast = reverse_delete(inst, fwd_ref, variant=variant, backend="fast")
    assert_reverse_equal(rev_ref, rev_fast)


@pytest.mark.parametrize("shape", ["uniform", "caterpillar", "broom"])
def test_random_instances_both_variants(shape: str) -> None:
    inst_src = random_tap_instance(90, 140, seed=29, shape=shape)
    tree = inst_src.tree
    links = [(e.dec, e.anc, e.weight) for e in inst_src.edges]
    for variant in ("basic", "improved"):
        ref = approximate_tap(tree, links, eps=0.4, variant=variant)
        fast = approximate_tap(tree, links, eps=0.4, variant=variant, backend="fast")
        assert fast.links == ref.links
        assert fast.weight == ref.weight
        assert fast.virtual_eids == ref.virtual_eids
        assert fast.dual_bound == ref.dual_bound


@pytest.mark.parametrize("family,seed", [("erdos_renyi", 3), ("grid", 1), ("geometric", 2)])
def test_two_ecss_end_to_end(family: str, seed: int) -> None:
    graph = make_family_instance(family, 120, seed=seed)
    ref = approximate_two_ecss(graph, eps=0.5)
    fast = approximate_two_ecss(graph, eps=0.5, backend="fast")
    assert fast.edges == ref.edges
    assert fast.weight == ref.weight
    assert fast.mst_edges == ref.mst_edges
    assert fast.mst_weight == ref.mst_weight
    assert fast.guarantee == ref.guarantee


def test_virtual_edges_materialize_identically() -> None:
    graph, tree, links = _tap_instance("erdos_renyi", 100, 7)
    ref = TAPInstance.from_links(tree, links)
    fast = TAPInstance.from_links(tree, links, backend="fast")
    assert len(fast.edges) == len(ref.edges)
    assert list(fast.edges) == list(ref.edges)
    # Indexing and negative indexing behave like the reference list.
    assert fast.edges[0] == ref.edges[0]
    assert fast.edges[-1] == ref.edges[-1]
    # Out-of-range indices raise (and never poison the materialization
    # cache with a wrong-eid edge).
    for bad in (len(ref.edges), -len(ref.edges) - 1):
        with pytest.raises(IndexError):
            fast.edges[bad]
    assert fast.edges[len(ref.edges) - 1].eid == len(ref.edges) - 1


def test_infeasible_raises_on_both_backends() -> None:
    # A path graph has bridges everywhere: TAP on it is infeasible.
    graph = nx.path_graph(8)
    nx.set_edge_attributes(graph, 1.0, "weight")
    _, tree, links = _links_of(graph)
    inst = TAPInstance.from_links(tree, links)
    with pytest.raises(NotTwoEdgeConnectedError):
        forward_phase(inst, eps=0.5)
    with pytest.raises(NotTwoEdgeConnectedError):
        forward_phase(inst, eps=0.5, backend="fast")


def test_zero_weight_links_bit_identical() -> None:
    """Zero-weight links take the epoch-0 shortcut on both backends."""
    inst_src = random_tap_instance(70, 90, seed=41)
    tree = inst_src.tree
    links = [
        (e.dec, e.anc, 0.0 if i % 7 == 0 else e.weight)
        for i, e in enumerate(inst_src.edges)
    ]
    ref = approximate_tap(tree, links, eps=0.5)
    fast = approximate_tap(tree, links, eps=0.5, backend="fast")
    assert fast.links == ref.links
    assert fast.weight == ref.weight
    assert fast.virtual_eids == ref.virtual_eids
