"""Tests for TAPInstance, results, the CLI and the simulated-MST bridge."""

from __future__ import annotations

import pytest

import repro
from repro.core.instance import TAPInstance
from repro.core.virtual_graph import build_virtual_edges
from repro.exceptions import NotTwoEdgeConnectedError
from repro.graphs import cycle_with_chords
from repro.__main__ import main as cli_main

from conftest import random_tap_links, random_tree


class TestInstance:
    def test_feasibility_check(self):
        tree = random_tree(10, shape="path")
        inst = TAPInstance.from_links(tree, [(9, 0, 1.0)])
        inst.check_feasible()  # the single link covers everything
        bad = TAPInstance.from_links(tree, [(9, 5, 1.0)])
        with pytest.raises(NotTwoEdgeConnectedError):
            bad.check_feasible()

    def test_weight_and_covers(self):
        tree = random_tree(12, seed=1)
        links = random_tap_links(tree, 20, seed=2)
        inst = TAPInstance.from_links(tree, links)
        assert inst.weight_of([]) == 0.0
        assert inst.weight_of([0]) == pytest.approx(inst.edges[0].weight)
        e = inst.edges[0]
        for t in inst.covered_edges(0):
            assert inst.covers(0, t)
            assert tree.covers_vertical(e.dec, e.anc, t)

    def test_num_tree_edges_and_coverage_cache(self):
        tree = random_tree(15, seed=3)
        links = random_tap_links(tree, 20, seed=4)
        inst = TAPInstance.from_links(tree, links)
        assert inst.num_tree_edges == 14
        cov1 = inst.coverage
        cov2 = inst.coverage
        assert cov1 is cov2  # cached

    def test_segment_size_override(self):
        tree = random_tree(40, seed=5)
        links = random_tap_links(tree, 40, seed=6)
        inst = TAPInstance.from_links(tree, links, segment_size=3)
        assert all(len(s.highway_edges) <= 3 for s in inst.segments.segments)


class TestSimulatedMstBridge:
    def test_same_solution_as_centralized(self):
        g = cycle_with_chords(30, 12, seed=7)
        a = repro.approximate_two_ecss(g, eps=0.5)
        b = repro.approximate_two_ecss(g, eps=0.5, simulate_mst=True)
        assert a.mst_weight == pytest.approx(b.mst_weight)
        assert b.mst_simulation is not None
        assert b.mst_simulation.rounds > 0
        assert sorted(a.edges) == sorted(b.edges)


class TestCli:
    def test_help(self, capsys):
        assert cli_main([]) == 0
        assert "python -m repro" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert cli_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "2-ECSS" in out

    def test_experiments_subset(self, capsys):
        assert cli_main(["experiments", "e05"]) == 0
        assert "e05_layering" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["experiments", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, on stderr
        assert "unknown experiment" in err and "e01" in err

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown command" in err and "serve" in err


class TestCliExitCodes:
    """Usage errors: exit 2 with a one-line stderr message, never a trace."""

    def test_sweep_invalid_sizes(self, capsys):
        assert cli_main(["sweep", "--sizes", "two-thousand"]) == 2
        err = capsys.readouterr().err
        assert "invalid value for --sizes" in err
        assert err.count("\n") == 1

    def test_sweep_invalid_eps(self, capsys):
        assert cli_main(["sweep", "--eps", "0.5,x"]) == 2
        assert "invalid value for --eps" in capsys.readouterr().err

    def test_sweep_unknown_backend(self, capsys):
        assert cli_main(["sweep", "--backend", "warp", "--sizes", "12"]) == 2
        err = capsys.readouterr().err
        assert "registered" in err and err.count("\n") == 1

    def test_serve_unknown_backend(self, capsys):
        assert cli_main(["serve", "--backend", "warp"]) == 2
        assert "registered" in capsys.readouterr().err

    def test_loadgen_invalid_families(self, capsys):
        # argparse flag errors exit 2 via SystemExit with a short usage.
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["loadgen", "--duration", "soon"])
        assert excinfo.value.code == 2

    def test_loadgen_unreachable_server(self, capsys):
        # Nothing listens on this port: one-line CliError, exit 2.
        assert cli_main([
            "loadgen", "--port", "1", "--duration", "0.2",
            "--topologies", "1", "--size", "12",
        ]) == 2
        err = capsys.readouterr().err
        assert "cannot reach" in err and "--spawn" in err


class TestBackendsCli:
    def test_backends_table(self, capsys):
        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "registered execution backends" in out

    def test_backends_json_matches_registry(self, capsys):
        import json

        from repro.runtime.registry import registered_payload

        assert cli_main(["backends", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == registered_payload()
        names = {(s["kind"], s["name"]) for s in payload}
        assert ("compute", "fast") in names and ("engine", "sim") in names
        for spec in payload:
            assert set(spec) == {
                "kind", "name", "capabilities", "description", "alias",
            }
