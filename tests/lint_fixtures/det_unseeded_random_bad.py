"""Fixture: process-global RNG in solver code (must be caught)."""
# lint: module=repro.core.fixture_rng_bad
import random


def jitter() -> float:
    """Draw from the unseeded module-level RNG."""
    return random.random()
