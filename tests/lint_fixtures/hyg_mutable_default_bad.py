"""Fixture: mutable default argument (must be caught)."""
# lint: module=repro.runtime.fixture_mutable_bad


def collect(item: int, acc: list = []) -> list:
    """The shared-default-list classic."""
    acc.append(item)
    return acc
