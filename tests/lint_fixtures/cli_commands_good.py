"""Fixture CLI module whose usage block matches COMMANDS.

Usage::

    python -m repro demo
"""
# lint: module=repro.__main__


def _demo() -> int:
    """The demo subcommand."""
    return 0


COMMANDS = {"demo": _demo}
