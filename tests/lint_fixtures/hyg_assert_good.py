"""Fixture: explicit raise survives python -O."""
# lint: module=repro.runtime.fixture_assert_good


def checked(x: int) -> int:
    """Validates with a real exception."""
    if x < 0:
        raise ValueError("x must be non-negative")
    return x
