"""Fixture: fire-and-forget coroutine call (must be caught)."""
# lint: module=repro.serve.fixture_unawaited_bad


async def step() -> None:
    """One async step."""


async def driver() -> None:
    """Calls the coroutine without awaiting it - it never runs."""
    step()
