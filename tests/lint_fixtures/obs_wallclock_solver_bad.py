"""Fixture: a solver module reading the wall clock despite the obs
package exemption existing (the exemption must not leak outward)."""
# lint: module=repro.runtime.fixture_obs_clock_bad
import time


def span_start() -> float:
    """Wall-clock stamp in solver code - still forbidden."""
    return time.time()
