"""Fixture: serve handler raising an unstructured exception."""
# lint: module=repro.serve.workers


def handle(obj: object) -> dict:
    """Raises ValueError where the wire needs a ProtocolError."""
    if not isinstance(obj, dict):
        raise ValueError("request body must be a JSON object")
    return obj
