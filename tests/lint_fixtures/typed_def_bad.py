"""Fixture: unannotated function in the typed core (must be caught)."""
# lint: module=repro.core.fixture_typed_bad


def weigh(edges, weights):
    """No annotations at all."""
    return sum(weights[e] for e in edges)
