"""Fixture: asyncio.sleep inside async def - loop stays responsive."""
# lint: module=repro.serve.fixture_async_good
import asyncio


async def handler() -> None:
    """Yields to the event loop while waiting."""
    await asyncio.sleep(0.1)
