"""Fixture: producing an error code missing from ERROR_CODES."""
# lint: module=repro.serve.fixture_proto_bad


class ProtocolError(Exception):
    """Stand-in structured error (the rule matches by call name)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


ERROR_CODES = {
    "bad-request": (400, "request body fails schema validation"),
}


def reject() -> None:
    """Raises a code the table does not declare."""
    raise ProtocolError("no-such-code", "mystery failure")
