"""Fixture: None default with inner materialization."""
# lint: module=repro.runtime.fixture_mutable_good


def collect(item: int, acc: "list | None" = None) -> list:
    """Fresh list per call unless one is passed."""
    out = [] if acc is None else acc
    out.append(item)
    return out
