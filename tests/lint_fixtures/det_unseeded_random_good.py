"""Fixture: explicitly seeded RNG threaded through - deterministic."""
# lint: module=repro.core.fixture_rng_good
import random


def jitter(seed: int) -> float:
    """Draw from an explicitly seeded generator."""
    rng = random.Random(seed)
    return rng.random()
