"""Fixture: every produced error code is declared (and documented)."""
# lint: module=repro.serve.fixture_proto_good


class ProtocolError(Exception):
    """Stand-in structured error (the rule matches by call name)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


ERROR_CODES = {
    "bad-request": (400, "request body fails schema validation"),
}


def reject() -> None:
    """Raises a declared, documented code."""
    raise ProtocolError("bad-request", "body must be a JSON object")
