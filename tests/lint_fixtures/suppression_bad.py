"""Fixture: malformed and unknown-rule suppressions (must be caught)."""
# lint: module=repro.runtime.fixture_suppression_bad


def quiet() -> int:
    """Carries broken lint directives."""
    x = 1  # lint: disable=no-such-rule -- the rule name is wrong
    y = 2  # lint: disable=hyg-assert
    return x + y
