"""Fixture: load-bearing assert in non-test source (must be caught)."""
# lint: module=repro.runtime.fixture_assert_bad


def checked(x: int) -> int:
    """Disappears under python -O."""
    assert x >= 0, "x must be non-negative"
    return x
