"""Fixture: coroutine properly awaited."""
# lint: module=repro.serve.fixture_unawaited_good


async def step() -> None:
    """One async step."""


async def driver() -> None:
    """Awaits the coroutine."""
    await step()
