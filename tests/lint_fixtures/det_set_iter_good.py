"""Fixture: edge-set iteration through sorted() - deterministic."""
# lint: module=repro.core.fixture_det_set_iter_good


def total_weight(weights: dict) -> float:
    """Iterate the edge set in sorted order."""
    edge_set = {(0, 1), (1, 2), (2, 0)}
    out = 0.0
    for u, v in sorted(edge_set):
        out = out * 2.0 + weights[(u, v)]
    return out
