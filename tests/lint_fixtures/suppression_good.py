"""Fixture: a well-formed suppression with a reason silences a finding."""
# lint: module=repro.core.fixture_suppression_good


def masked(weights: dict) -> list:
    """Iterates a set order-insensitively, documented via suppression."""
    keys = {(0, 1), (1, 2)}
    mask = [False] * 4
    for u, v in keys:  # lint: disable=det-set-iter -- element-wise writes to distinct indices
        mask[u + v] = True
    return mask
