"""Fixture: monotonic duration measurement - no wall-clock in results."""
# lint: module=repro.core.fixture_clock_good
import time


def elapsed(t0: float) -> float:
    """Duration via the monotonic clock."""
    return time.monotonic() - t0
