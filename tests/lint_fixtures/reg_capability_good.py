"""Fixture: capability queries limited to declared strings."""
# lint: module=repro.runtime.fixture_cap_good


class BackendSpec:
    """Stand-in declaration site (the rule matches by call name)."""

    def __init__(self, name: str, capabilities: frozenset) -> None:
        self.name = name
        self.capabilities = capabilities

    def has(self, cap: str) -> bool:
        """Capability membership query."""
        return cap in self.capabilities


SPEC = BackendSpec("reference", capabilities=frozenset({"portable"}))


def wants_portable() -> bool:
    """Queries a declared capability."""
    return SPEC.has("portable")
