"""Fixture: time.sleep inside async def (must be caught)."""
# lint: module=repro.serve.fixture_async_bad
import time


async def handler() -> None:
    """Blocks the event loop."""
    time.sleep(0.1)
