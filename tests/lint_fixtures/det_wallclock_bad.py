"""Fixture: wall-clock read on a solver path (must be caught)."""
# lint: module=repro.core.fixture_clock_bad
import time


def stamp() -> float:
    """Wall-clock leaks into a result."""
    return time.time()
