"""Fixture: argsort without kind="stable" on a weight column."""
# lint: module=repro.core.fixture_sort_bad
import numpy as np


def order(weights: "np.ndarray") -> "np.ndarray":
    """Sort edge indices by weight with the unstable default introsort."""
    return np.argsort(weights)
