"""Fixture: unsorted edge-set iteration on a solver path (must be caught)."""
# lint: module=repro.core.fixture_det_set_iter_bad


def total_weight(weights: dict) -> float:
    """Iterate an edge set without sorting - nondeterministic order."""
    edge_set = {(0, 1), (1, 2), (2, 0)}
    out = 0.0
    for u, v in edge_set:
        out = out * 2.0 + weights[(u, v)]
    return out
