"""Fixture: the tracing package reads the wall clock by design -
``repro.obs`` is package-exempt from det-wallclock."""
# lint: module=repro.obs.fixture_obs_clock_good
import time


def span_start() -> float:
    """Epoch stamp so multi-process span trees align."""
    return time.time()
