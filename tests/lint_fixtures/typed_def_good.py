"""Fixture: fully annotated function in the typed core."""
# lint: module=repro.core.fixture_typed_good


def weigh(edges: list, weights: dict) -> float:
    """Every parameter and the return are annotated."""
    return float(sum(weights[e] for e in edges))
