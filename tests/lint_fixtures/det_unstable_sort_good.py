"""Fixture: stable argsort - ties break by position, reproducibly."""
# lint: module=repro.core.fixture_sort_good
import numpy as np


def order(weights: "np.ndarray") -> "np.ndarray":
    """Sort edge indices by weight, stably."""
    return np.argsort(weights, kind="stable")
