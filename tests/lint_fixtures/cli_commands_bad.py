"""Fixture CLI module with usage drift.

Usage::

    python -m repro demo
    python -m repro vanished
"""
# lint: module=repro.__main__


def _demo() -> int:
    """The demo subcommand."""
    return 0


COMMANDS = {"demo": _demo}
