"""Fixture: serve handler raising only structured protocol errors."""
# lint: module=repro.serve.workers


class ProtocolError(Exception):
    """Stand-in structured error (allowed by the contract rule)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def handle(obj: object) -> dict:
    """Raises the structured error the wire contract requires."""
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request body must be a JSON object")
    return obj
