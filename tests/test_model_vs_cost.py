"""Cross-validation of fidelity levels: measured (S) vs priced (M) rounds.

The Level-M cost model charges ``D + sqrt(n)`` per tree aggregate; genuinely
simulated aggregates over BFS trees must come in *under* that price (their
height is at most D), and BFS itself under the broadcast+aggregate budget.
This pins the cost model to reality on the primitives we can simulate.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.rounds import RoundCostModel
from repro.graphs import cycle_with_chords, erdos_renyi_2ec, grid_graph
from repro.model.network import Network
from repro.model.programs import DistributedBFS, TreeAggregate


@pytest.mark.parametrize(
    "maker",
    [
        lambda: grid_graph(6, 6, seed=1),
        lambda: erdos_renyi_2ec(60, seed=2),
        lambda: cycle_with_chords(50, 20, seed=3),
    ],
)
def test_simulated_aggregate_within_model_price(maker):
    g = maker()
    n = g.number_of_nodes()
    d = nx.diameter(g)
    model = RoundCostModel(n, d)

    net = Network(g)
    bfs_stats = net.run(DistributedBFS(0))
    _, parent = DistributedBFS.results(net)
    # BFS costs at most ecc(0) + 2 <= D + 2 rounds, well under one aggregate.
    assert bfs_stats.rounds <= d + 2
    assert bfs_stats.rounds <= model.cost_of("aggregate") + 2

    net.reset_state()
    agg = TreeAggregate(parent, 0, [(1.0,)] * n, lambda a, b: (a[0] + b[0],))
    agg_stats = net.run(agg)
    assert TreeAggregate.result(net, 0)[0] == pytest.approx(n)
    # a convergecast over the BFS tree costs height <= D rounds — the
    # Level-M price (D + sqrt n) is a valid upper bound for it
    assert agg_stats.rounds <= model.cost_of("aggregate") + 2


def test_model_price_upper_bounds_boruvka_fragment_work():
    # One Boruvka phase's intra-fragment flood is priced at most like an
    # MST step in the model; the measured full run stays under the
    # Kutten-Peleg-priced MST cost times the phase count.
    from repro.model.mst import BoruvkaMST

    g = erdos_renyi_2ec(60, seed=4)
    d = nx.diameter(g)
    model = RoundCostModel(g.number_of_nodes(), d)
    out = BoruvkaMST(Network(g)).run()
    # Boruvka is not Kutten-Peleg; we only require the *shape*: measured
    # rounds within phases * (n-ish flood costs), and phases logarithmic.
    assert out.phases <= 8
    assert out.stats.rounds <= out.phases * (2 * g.number_of_nodes() + 4)
