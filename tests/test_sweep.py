"""Tests for the parallel sweep engine and its CLI wiring.

The grid itself runs serially (``workers=0``) to keep the suite fast and
deterministic; one small case exercises the real process pool.  Caching is
asserted by re-running the same grid and checking that no cell recomputes.
"""

from __future__ import annotations

import csv
import json
import os

import pytest

pytest.importorskip("numpy")

from repro.analysis.sweep import SweepTask, run_sweep
from repro.core.tecss import approximate_two_ecss
from repro.graphs.families import make_family_instance


def _run(tmp_path, workers=0, **kwargs):
    defaults = dict(
        families=["cycle_chords", "grid"],
        sizes=[40, 70],
        seeds=[1],
        eps_values=[0.5],
        workers=workers,
        cache_dir=str(tmp_path / "cache"),
        out_dir=str(tmp_path / "out"),
        name="tiny",
    )
    defaults.update(kwargs)
    return run_sweep(**defaults)


def test_sweep_rows_and_outputs(tmp_path) -> None:
    report = _run(tmp_path)
    assert len(report.rows) == 4
    assert report.cache_hits == 0 and report.cache_misses == 4
    for row in report.rows:
        assert row["backend"] == "fast"
        assert row["weight"] >= row["mst_weight"] > 0
        assert row["certified_ratio"] <= row["guarantee"] + 1e-6
        assert row["solve_s"] >= 0
    # Outputs exist and parse.
    with open(report.json_path) as fh:
        assert len(json.load(fh)) == 4
    with open(report.csv_path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 4 and rows[0]["family"] == "cycle_chords"
    assert os.path.exists(report.text_path)


def test_sweep_cache_hits_on_rerun(tmp_path) -> None:
    first = _run(tmp_path)
    again = _run(tmp_path)
    assert again.cache_hits == 4 and again.cache_misses == 0
    assert again.rows == first.rows
    # A new eps value only computes the new cells.
    wider = _run(tmp_path, eps_values=[0.5, 1.0])
    assert wider.cache_hits == 4 and wider.cache_misses == 4


def test_sweep_rows_match_direct_solver_run(tmp_path) -> None:
    report = _run(tmp_path, families=["grid"], sizes=[50], seeds=[3])
    (row,) = report.rows
    graph = make_family_instance("grid", 50, seed=3)
    res = approximate_two_ecss(graph, eps=0.5, backend="fast")
    assert row["weight"] == res.weight
    assert row["mst_weight"] == res.mst_weight
    assert row["n"] == res.n


def test_sweep_process_pool(tmp_path) -> None:
    report = _run(tmp_path, workers=2, families=["cycle_chords"], sizes=[40, 60])
    assert len(report.rows) == 2
    assert [r["n"] for r in report.rows] == [40, 60]


def test_sweep_reference_backend_rows_same_weights(tmp_path) -> None:
    fast = _run(tmp_path, families=["grid"], sizes=[40])
    ref = _run(tmp_path, families=["grid"], sizes=[40], backend="reference")
    assert fast.rows[0]["weight"] == ref.rows[0]["weight"]
    # Different backends are distinct cache cells.
    assert ref.cache_misses == 1


def test_sweep_corrupt_cache_entry_is_recomputed(tmp_path) -> None:
    """A truncated cache file (killed mid-write) counts as a miss, not a crash."""
    report = _run(tmp_path, families=["grid"], sizes=[40])
    cache = tmp_path / "cache"
    (entry,) = list(cache.iterdir())
    entry.write_text("{not json")
    again = _run(tmp_path, families=["grid"], sizes=[40])
    assert again.cache_misses == 1

    def stable(row: dict) -> dict:
        return {k: v for k, v in row.items() if not k.endswith("_s")}

    assert [stable(r) for r in again.rows] == [stable(r) for r in report.rows]


def test_sweep_task_fingerprint_stability() -> None:
    a = SweepTask("grid", 100, 1, 0.5)
    b = SweepTask("grid", 100, 1, 0.5)
    c = SweepTask("grid", 100, 2, 0.5)
    assert a.fingerprint() == b.fingerprint() != c.fingerprint()
    assert a.fingerprint() != SweepTask("grid", 100, 1, 0.5, engine="sim").fingerprint()


def test_cache_entry_with_wrong_task_is_rejected(tmp_path) -> None:
    """Regression: a fingerprint collision (or hand-copied cache file) must
    not return another cell's row — the stored task is verified field by
    field against the requested one."""
    report = _run(tmp_path, families=["grid"], sizes=[40])
    cache = tmp_path / "cache"
    (entry,) = list(cache.iterdir())
    data = json.loads(entry.read_text())
    data["task"]["seed"] = 999  # simulate a collision: same filename, other task
    entry.write_text(json.dumps(data))
    again = _run(tmp_path, families=["grid"], sizes=[40])
    assert again.cache_hits == 0 and again.cache_misses == 1
    assert again.rows[0]["seed"] == report.rows[0]["seed"] == 1


def test_cache_entry_with_stale_schema_version_is_recomputed(tmp_path) -> None:
    _run(tmp_path, families=["grid"], sizes=[40])
    cache = tmp_path / "cache"
    (entry,) = list(cache.iterdir())
    data = json.loads(entry.read_text())
    data["version"] = -1
    entry.write_text(json.dumps(data))
    again = _run(tmp_path, families=["grid"], sizes=[40])
    assert again.cache_misses == 1


def test_rows_sorted_by_grid_key_regardless_of_axis_order(tmp_path) -> None:
    """Regression: report row order is the grid key, not submission or
    completion order, so two sweep outputs diff meaningfully."""
    fwd = _run(tmp_path, families=["grid", "cycle_chords"], sizes=[70, 40])
    rev = _run(tmp_path, families=["cycle_chords", "grid"], sizes=[40, 70])
    keys = [(r["family"], r["n"]) for r in fwd.rows]
    assert keys == sorted(keys)
    assert [(r["family"], r["n"]) for r in rev.rows] == keys
    assert rev.rows == fwd.rows  # cache hits, identical order and content


def test_sim_engine_rows_carry_rounds_columns(tmp_path) -> None:
    report = _run(
        tmp_path, families=["cycle_chords"], sizes=[30], engine="sim"
    )
    (row,) = report.rows
    assert row["engine"] == "sim" and row["backend"] == "reference"
    assert row["measured_rounds"] > 0
    assert row["priced_rounds"] > 0
    assert row["rounds_within_bound"] is True
    # The sim engine's solution is the reference solution.
    graph = make_family_instance("cycle_chords", 30, seed=1)
    ref = approximate_two_ecss(graph, eps=0.5, backend="reference")
    assert row["weight"] == ref.weight


def test_unknown_engine_rejected(tmp_path) -> None:
    with pytest.raises(ValueError, match="engine"):
        _run(tmp_path, engine="quantum")


def test_warm_worker_is_idempotent() -> None:
    from repro.analysis.sweep import warm_worker

    warm_worker("local")
    warm_worker("sim")
    warm_worker("sim")


def test_sweep_cli_smoke(tmp_path, capsys) -> None:
    from repro.__main__ import main

    rc = main(
        [
            "sweep",
            "--families", "cycle_chords",
            "--sizes", "40",
            "--seeds", "1",
            "--eps", "0.5",
            "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--out-dir", str(tmp_path / "out"),
            "--name", "cli_smoke",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "cli_smoke" in out and "cells: 1" in out
