"""Tests for the parallel sweep engine and its CLI wiring.

The grid itself runs serially (``workers=0``) to keep the suite fast and
deterministic; one small case exercises the real process pool.  Caching is
asserted by re-running the same grid and checking that no cell recomputes.
"""

from __future__ import annotations

import csv
import json
import os

import pytest

pytest.importorskip("numpy")

from repro.analysis.sweep import SweepTask, run_sweep
from repro.core.tecss import approximate_two_ecss
from repro.graphs.families import make_family_instance


def _run(tmp_path, workers=0, **kwargs):
    defaults = dict(
        families=["cycle_chords", "grid"],
        sizes=[40, 70],
        seeds=[1],
        eps_values=[0.5],
        workers=workers,
        cache_dir=str(tmp_path / "cache"),
        out_dir=str(tmp_path / "out"),
        name="tiny",
    )
    defaults.update(kwargs)
    return run_sweep(**defaults)


def test_sweep_rows_and_outputs(tmp_path) -> None:
    report = _run(tmp_path)
    assert len(report.rows) == 4
    assert report.cache_hits == 0 and report.cache_misses == 4
    for row in report.rows:
        assert row["backend"] == "fast"
        assert row["weight"] >= row["mst_weight"] > 0
        assert row["certified_ratio"] <= row["guarantee"] + 1e-6
        assert row["solve_s"] >= 0
    # Outputs exist and parse.
    with open(report.json_path) as fh:
        assert len(json.load(fh)) == 4
    with open(report.csv_path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 4 and rows[0]["family"] == "cycle_chords"
    assert os.path.exists(report.text_path)


def test_sweep_cache_hits_on_rerun(tmp_path) -> None:
    first = _run(tmp_path)
    again = _run(tmp_path)
    assert again.cache_hits == 4 and again.cache_misses == 0
    assert again.rows == first.rows
    # A new eps value only computes the new cells.
    wider = _run(tmp_path, eps_values=[0.5, 1.0])
    assert wider.cache_hits == 4 and wider.cache_misses == 4


def test_sweep_rows_match_direct_solver_run(tmp_path) -> None:
    report = _run(tmp_path, families=["grid"], sizes=[50], seeds=[3])
    (row,) = report.rows
    graph = make_family_instance("grid", 50, seed=3)
    res = approximate_two_ecss(graph, eps=0.5, backend="fast")
    assert row["weight"] == res.weight
    assert row["mst_weight"] == res.mst_weight
    assert row["n"] == res.n


def test_sweep_process_pool(tmp_path) -> None:
    report = _run(tmp_path, workers=2, families=["cycle_chords"], sizes=[40, 60])
    assert len(report.rows) == 2
    assert [r["n"] for r in report.rows] == [40, 60]


def test_sweep_reference_backend_rows_same_weights(tmp_path) -> None:
    fast = _run(tmp_path, families=["grid"], sizes=[40])
    ref = _run(tmp_path, families=["grid"], sizes=[40], backend="reference")
    assert fast.rows[0]["weight"] == ref.rows[0]["weight"]
    # Different backends are distinct cache cells.
    assert ref.cache_misses == 1


def test_sweep_corrupt_cache_entry_is_recomputed(tmp_path) -> None:
    """A truncated cache file (killed mid-write) counts as a miss, not a crash."""
    report = _run(tmp_path, families=["grid"], sizes=[40])
    cache = tmp_path / "cache"
    (entry,) = list(cache.iterdir())
    entry.write_text("{not json")
    again = _run(tmp_path, families=["grid"], sizes=[40])
    assert again.cache_misses == 1

    def stable(row: dict) -> dict:
        return {k: v for k, v in row.items() if not k.endswith("_s")}

    assert [stable(r) for r in again.rows] == [stable(r) for r in report.rows]


def test_sweep_task_fingerprint_stability() -> None:
    a = SweepTask("grid", 100, 1, 0.5)
    b = SweepTask("grid", 100, 1, 0.5)
    c = SweepTask("grid", 100, 2, 0.5)
    assert a.fingerprint() == b.fingerprint() != c.fingerprint()


def test_sweep_cli_smoke(tmp_path, capsys) -> None:
    from repro.__main__ import main

    rc = main(
        [
            "sweep",
            "--families", "cycle_chords",
            "--sizes", "40",
            "--seeds", "1",
            "--eps", "0.5",
            "--workers", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--out-dir", str(tmp_path / "out"),
            "--name", "cli_smoke",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "cli_smoke" in out and "cells: 1" in out
