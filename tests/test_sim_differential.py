"""Differential tests: the batched engine against the legacy oracle.

The legacy :class:`repro.model.network.Network` is the reference semantics;
``repro.sim.BatchedNetwork`` must reproduce its :class:`RunStats`
bit-for-bit — under both the synchronous scheduler (same stepping) and the
event-driven scheduler (skips idle nodes) — on seeded random programs over
random graph families, on every built-in program, and through the Borůvka
MST driver.  A final timing test pins the point of the whole exercise: the
event-driven engine beats the per-node loop by ≥3× on a 2000+-node grid.
"""

from __future__ import annotations

import time

import networkx as nx
import pytest

from repro.graphs import (
    cycle_with_chords,
    erdos_renyi_2ec,
    grid_graph,
    hub_and_cycle,
)
from repro.model.mst import BoruvkaMST
from repro.model.network import Network
from repro.model.programs import (
    DistributedBFS,
    FloodMin,
    TreeAggregate,
    TreeBroadcast,
)
from repro.sim import BatchedNetwork, RandomGossip

from conftest import random_tree, tree_as_networkx

GRAPH_MAKERS = {
    "cycle_chords": lambda seed: cycle_with_chords(40, 15, seed=seed),
    "erdos_renyi": lambda seed: erdos_renyi_2ec(45, seed=seed),
    "grid": lambda seed: grid_graph(6, 7, seed=seed),
    "hub_cycle": lambda seed: hub_and_cycle(40, seed=seed),
    "path": lambda seed: nx.path_graph(35),
    "tree": lambda seed: tree_as_networkx(random_tree(40, seed=seed)),
}


def _weighted(g: nx.Graph) -> nx.Graph:
    for _, _, d in g.edges(data=True):
        d.setdefault("weight", 1.0)
    return g


def run_three_ways(g: nx.Graph, make_program):
    """(legacy, batched-event, batched-sync) stats + node fingerprints."""
    outs = []
    for net in (
        Network(g),
        BatchedNetwork(g),
        BatchedNetwork(g, scheduler="sync"),
    ):
        stats = net.run(make_program())
        outs.append((stats, [dict(c.state) for c in net.contexts]))
    return outs


def _strip_rngs(states):
    return [{k: v for k, v in st.items() if k != "rng"} for st in states]


class TestRandomGossipDifferential:
    """24 seeded (graph, program) pairs — the acceptance-criteria sweep."""

    @pytest.mark.parametrize("family", sorted(GRAPH_MAKERS))
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_identical_stats_and_states(self, family, seed):
        g = _weighted(GRAPH_MAKERS[family](seed))
        (s1, st1), (s2, st2), (s3, st3) = run_three_ways(
            g, lambda: RandomGossip(seed=100 + seed)
        )
        assert s1 == s2 == s3
        assert _strip_rngs(st1) == _strip_rngs(st2) == _strip_rngs(st3)
        assert s1.messages > 0  # the sweep must exercise real traffic

    def test_gossip_sees_traffic_fingerprint(self):
        g = _weighted(erdos_renyi_2ec(45, seed=9))
        net_a, net_b = Network(g), BatchedNetwork(g)
        net_a.run(RandomGossip(seed=5))
        net_b.run(RandomGossip(seed=5))
        assert RandomGossip.results(net_a) == RandomGossip.results(net_b)


class TestBuiltinProgramsDifferential:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_bfs(self, seed):
        g = _weighted(erdos_renyi_2ec(40, seed=seed))
        (s1, st1), (s2, st2), (s3, st3) = run_three_ways(
            g, lambda: DistributedBFS(0)
        )
        assert s1 == s2 == s3
        assert st1 == st2 == st3

    def test_flood_min(self):
        g = _weighted(cycle_with_chords(30, 8, seed=3))
        active = {v: sorted(g.neighbors(v)) for v in g.nodes()}
        values = [((v * 7) % 13, v) for v in range(g.number_of_nodes())]
        (s1, st1), (s2, st2), (s3, st3) = run_three_ways(
            g, lambda: FloodMin(values, active)
        )
        assert s1 == s2 == s3
        assert st1 == st2 == st3

    def test_tree_broadcast_and_aggregate(self):
        t = random_tree(45, seed=8)
        g = _weighted(tree_as_networkx(t))
        for make in (
            lambda: TreeBroadcast(t.parent, t.root, (17,)),
            lambda: TreeAggregate(
                t.parent, t.root, [(1.0,)] * t.n, lambda a, b: (a[0] + b[0],)
            ),
        ):
            (s1, st1), (s2, st2), (s3, st3) = run_three_ways(g, make)
            assert s1 == s2 == s3
            assert st1 == st2 == st3


class TestBoruvkaDifferential:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_identical_outcome(self, seed):
        g = cycle_with_chords(30, 12, seed=seed)
        legacy = BoruvkaMST(Network(g)).run()
        batched = BoruvkaMST(BatchedNetwork(g)).run()
        assert legacy.edges == batched.edges
        assert legacy.weight == pytest.approx(batched.weight)
        assert legacy.phases == batched.phases
        assert legacy.stats == batched.stats


class TestSpeedup:
    def test_batched_beats_legacy_3x_on_2000_nodes(self):
        g = grid_graph(45, 45, seed=1)  # 2025 nodes, diameter 88
        assert g.number_of_nodes() >= 2000

        def clock(make_net):
            best, stats = float("inf"), None
            for _ in range(3):  # best-of-3 damps shared-runner timer noise
                net = make_net()
                t0 = time.perf_counter()
                stats = net.run(DistributedBFS(0))
                best = min(best, time.perf_counter() - t0)
            return best, stats

        t_batched, s_batched = clock(lambda: BatchedNetwork(g))
        t_legacy, s_legacy = clock(lambda: Network(g))
        assert s_legacy == s_batched
        assert t_legacy >= 3 * t_batched, (
            f"legacy {t_legacy:.3f}s vs batched {t_batched:.3f}s — "
            f"only {t_legacy / t_batched:.1f}x"
        )
