"""The ``/v1/delta`` serve route: parsing, bit-identity, eviction degrade.

The wire contract under test: a sparse delta request answers bit-identical
to the equivalent full-weight-column ``/v1/solve``; a delta naming a
topology the server no longer stores is a *structured* ``unknown-topology``
404 (never a 500), which clients degrade from by resending the full graph;
and worker-side session eviction is invisible to delta clients because
deltas are diffs against the registered baseline, which the dispatcher can
always replay to a fresh worker session.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.graphs.families import make_family_instance
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.protocol import (
    ProtocolError,
    fingerprint_graph,
    graph_payload,
    parse_delta_request,
)


def run(coro):
    return asyncio.run(coro)


def _payload(size=30, seed=3):
    return graph_payload(make_family_instance("cycle_chords", size, seed=seed))


async def _post(app, path, body):
    return await app.handle("POST", path, json.dumps(body).encode())


# ---------------------------------------------------------------------------
# request parsing
# ---------------------------------------------------------------------------


class TestParseDeltaRequest:
    def test_valid(self):
        req = parse_delta_request({
            "topology": "abc", "delta": [[0, 1, 2.5], [3, 4, 0.0]],
            "eps": 0.5, "validate": False,
        })
        assert req.topology == "abc"
        assert req.delta == [[0, 1, 2.5], [3, 4, 0.0]]
        assert req.graph is None and req.weights is None
        assert req.eps == 0.5 and req.validate is False

    @pytest.mark.parametrize("body,code,field", [
        ({"delta": [[0, 1, 1.0]]}, "bad-request", "topology"),
        ({"topology": "", "delta": [[0, 1, 1.0]]}, "bad-request", "topology"),
        ({"topology": "t"}, "invalid-field", "delta"),
        ({"topology": "t", "delta": []}, "invalid-field", "delta"),
        ({"topology": "t", "delta": [[0, 1]]}, "invalid-field", "delta"),
        ({"topology": "t", "delta": [[0, 0, 1.0]]}, "invalid-field", "delta"),
        ({"topology": "t", "delta": [[0, 1, -1.0]]}, "invalid-weight", "delta"),
        ({"topology": "t", "delta": [[0, 1, math.nan]]},
         "invalid-weight", "delta"),
        ({"topology": "t", "delta": [[0, 1, True]]}, "invalid-weight", "delta"),
        ({"topology": "t", "delta": [[0, 1, 1.0]], "graph": {}},
         "unknown-field", "graph"),
        ({"topology": "t", "delta": [[0, 1, 1.0]], "weights": [1.0]},
         "unknown-field", "weights"),
        ({"topology": "t", "delta": [[0, 1, 1.0]], "protocol": 99},
         "unsupported-protocol", "protocol"),
    ])
    def test_rejections(self, body, code, field):
        with pytest.raises(ProtocolError) as excinfo:
            parse_delta_request(body)
        assert excinfo.value.code == code
        assert excinfo.value.field == field

    def test_duplicate_pair_either_order(self):
        for second in ([0, 1, 3.0], [1, 0, 3.0]):
            with pytest.raises(ProtocolError) as excinfo:
                parse_delta_request(
                    {"topology": "t", "delta": [[0, 1, 2.0], second]}
                )
            assert excinfo.value.code == "duplicate-edge"
            assert excinfo.value.field == "delta"


# ---------------------------------------------------------------------------
# the route, end to end (inline pool)
# ---------------------------------------------------------------------------


class TestDeltaRoute:
    def test_bit_identical_to_full_column(self):
        payload = _payload()

        async def scenario():
            app = ServeApp(ServeConfig(workers=0))
            await app.startup()
            try:
                status, resp = await _post(
                    app, "/v1/solve", {"graph": payload, "eps": 0.5}
                )
                assert status == 200
                topo = resp["topology"]
                edges = payload["edges"]
                delta = [
                    [edges[i][0], edges[i][1], edges[i][2] * 0.5]
                    for i in (0, 5, 11)
                ]
                status, dresp = await _post(app, "/v1/delta", {
                    "topology": topo, "delta": delta, "eps": 0.5,
                })
                assert status == 200
                column = [w for _, _, w in edges]
                for i in (0, 5, 11):
                    column[i] *= 0.5
                status, fresp = await _post(app, "/v1/solve", {
                    "topology": topo, "weights": column, "eps": 0.5,
                })
                assert status == 200
                assert dresp["result"] == fresp["result"]
                status, metrics = await app.handle("GET", "/metrics", b"")
                assert metrics["counters"]["delta.requests"] == 1
            finally:
                await app.shutdown()

        run(scenario())

    def test_unknown_topology_is_structured_404(self):
        async def scenario():
            app = ServeApp(ServeConfig(workers=0))
            await app.startup()
            try:
                status, resp = await _post(app, "/v1/delta", {
                    "topology": "never-registered", "delta": [[0, 1, 1.0]],
                })
                assert status == 404
                assert resp["error"]["code"] == "unknown-topology"
            finally:
                await app.shutdown()

        run(scenario())

    def test_unknown_delta_edge_is_structured_400(self):
        payload = _payload()

        async def scenario():
            app = ServeApp(ServeConfig(workers=0))
            await app.startup()
            try:
                _, resp = await _post(
                    app, "/v1/solve", {"graph": payload, "eps": 0.5}
                )
                status, bad = await _post(app, "/v1/delta", {
                    "topology": resp["topology"],
                    "delta": [[99998, 99999, 1.0]],
                })
                assert status == 400
                assert bad["error"]["code"] == "invalid-request"
            finally:
                await app.shutdown()

        run(scenario())

    def test_get_is_method_not_allowed(self):
        async def scenario():
            app = ServeApp(ServeConfig(workers=0))
            await app.startup()
            try:
                status, resp = await app.handle("GET", "/v1/delta", b"")
                assert status == 405
                assert resp["error"]["code"] == "method-not-allowed"
            finally:
                await app.shutdown()

        run(scenario())


# ---------------------------------------------------------------------------
# eviction fault injection
# ---------------------------------------------------------------------------


class TestDeltaUnderEviction:
    def test_dispatcher_store_eviction_mid_stream(self):
        """Evicting the topology mid-stream degrades deltas to a 404, and
        a full re-register resumes delta service — never a 500."""
        first = _payload(seed=1)
        crowd = [_payload(seed=s) for s in (2, 3)]

        async def scenario():
            app = ServeApp(ServeConfig(workers=0, max_topologies=2))
            await app.startup()
            try:
                _, resp = await _post(
                    app, "/v1/solve", {"graph": first, "eps": 0.5}
                )
                topo = resp["topology"]
                e = first["edges"][0]
                delta = {"topology": topo,
                         "delta": [[e[0], e[1], e[2] * 0.5]], "eps": 0.5}
                status, _ = await _post(app, "/v1/delta", delta)
                assert status == 200
                # Crowd the LRU: the first topology falls out of the store.
                for payload in crowd:
                    await _post(app, "/v1/solve",
                                {"graph": payload, "eps": 0.5})
                assert topo not in app._topologies
                status, resp = await _post(app, "/v1/delta", delta)
                assert status == 404
                assert resp["error"]["code"] == "unknown-topology"
                # The degrade a client performs: re-register, retry delta.
                status, _ = await _post(
                    app, "/v1/solve", {"graph": first, "eps": 0.5}
                )
                assert status == 200
                status, _ = await _post(app, "/v1/delta", delta)
                assert status == 200
            finally:
                await app.shutdown()

        run(scenario())

    def test_worker_session_eviction_is_transparent(self):
        """Worker-side LRU eviction between deltas: the rebuilt session
        replays the base-relative diff identically."""
        payloads = [_payload(seed=s) for s in (1, 2)]
        keys = [fingerprint_graph(p) for p in payloads]

        async def scenario():
            app = ServeApp(ServeConfig(workers=0, max_sessions=1))
            await app.startup()
            try:
                for payload in payloads:
                    await _post(app, "/v1/solve",
                                {"graph": payload, "eps": 0.5})
                e = payloads[0]["edges"][0]
                delta = {"topology": keys[0],
                         "delta": [[e[0], e[1], e[2] * 0.5]], "eps": 0.5}
                # The worker only holds topology 2's session now; the pool
                # retry re-materializes topology 1 from the stored graph
                # and the base-relative delta still applies exactly.
                status, dresp = await _post(app, "/v1/delta", delta)
                assert status == 200
                column = [w for _, _, w in payloads[0]["edges"]]
                column[0] = e[2] * 0.5
                status, fresp = await _post(app, "/v1/solve", {
                    "topology": keys[0], "weights": column, "eps": 0.5,
                })
                assert dresp["result"] == fresp["result"]
            finally:
                await app.shutdown()

        run(scenario())


# ---------------------------------------------------------------------------
# loadgen drift mode
# ---------------------------------------------------------------------------


class TestDriftLoadgen:
    def test_drift_burst_zero_protocol_errors(self):
        from repro.serve.loadgen import LoadgenConfig, run_loadgen

        summary = run_loadgen(
            LoadgenConfig(
                mode="drift", duration_s=2.0, concurrency=2,
                topologies=2, size=24, eps=0.5, seed=5,
            ),
            spawn=ServeConfig(workers=0),
        )
        assert summary["mode"] == "drift"
        assert summary["deltas"] > 0
        assert summary["protocol_errors"] == 0
        assert summary["transport_errors"] == 0

    def test_drift_degrades_on_store_eviction(self):
        """max_topologies=1 with two topologies: constant evictions — every
        delta that hits a forgotten fingerprint degrades to a full solve
        (counted as a reregistration), never erroring."""
        from repro.serve.loadgen import LoadgenConfig, run_loadgen

        summary = run_loadgen(
            LoadgenConfig(
                mode="drift", duration_s=2.0, concurrency=2,
                topologies=2, size=24, eps=0.5, seed=6, zipf_s=0.0,
            ),
            spawn=ServeConfig(workers=0, max_topologies=1),
        )
        assert summary["protocol_errors"] == 0
        assert summary["transport_errors"] == 0
        assert summary["reregistrations"] > 0
        assert summary["ok"] > 0
