"""Unit tests for the micro-batcher, worker pool dispatch, and metrics."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.protocol import ProtocolError


def run(coro):
    return asyncio.run(coro)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce(self):
        flushes: list[tuple[str, list]] = []

        async def flush(key, items):
            flushes.append((key, items))
            return [f"{key}:{item}" for item in items]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=10, max_delay=0.01)
            results = await asyncio.gather(
                *(batcher.submit("t", i) for i in range(5)),
                *(batcher.submit("u", i) for i in range(2)),
            )
            return batcher, results

        batcher, results = run(scenario())
        assert results == [f"t:{i}" for i in range(5)] + ["u:0", "u:1"]
        assert len(flushes) == 2  # one flush per key, not per item
        assert sorted(len(items) for _, items in flushes) == [2, 5]
        assert batcher.stats["flush_timer"] == 2
        assert batcher.stats["max_batch_observed"] == 5

    def test_max_batch_flushes_early(self):
        async def flush(key, items):
            return list(items)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_delay=60.0)
            # max_delay is a minute: only the size trigger can flush these.
            results = await asyncio.wait_for(
                asyncio.gather(*(batcher.submit("k", i) for i in range(4))),
                timeout=5.0,
            )
            return batcher, results

        batcher, results = run(scenario())
        assert results == [0, 1, 2, 3]
        assert batcher.stats["batches"] == 2
        assert batcher.stats["flush_size"] == 2

    def test_flush_exception_propagates_to_all_waiters(self):
        async def flush(key, items):
            raise ProtocolError("unknown-topology", "gone", status=404)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=8, max_delay=0.001)
            return await asyncio.gather(
                *(batcher.submit("k", i) for i in range(3)),
                return_exceptions=True,
            )

        results = run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, ProtocolError) for r in results)

    def test_wrong_length_flush_is_an_error(self):
        async def flush(key, items):
            return [1]  # always too short for a 2-item batch

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_delay=60.0)
            return await asyncio.gather(
                batcher.submit("k", "a"), batcher.submit("k", "b"),
                return_exceptions=True,
            )

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_drain_flushes_pending(self):
        flushed = []

        async def flush(key, items):
            await asyncio.sleep(0.01)
            flushed.extend(items)
            return list(items)

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=100, max_delay=60.0)
            waiters = [
                asyncio.ensure_future(batcher.submit("k", i))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the submits queue up
            assert batcher.pending() == 3
            await batcher.drain()
            assert batcher.pending() == 0
            assert batcher.stats["flush_drain"] == 1
            return await asyncio.gather(*waiters)

        assert run(scenario()) == [0, 1, 2]
        assert flushed == [0, 1, 2]


class TestShardedPool:
    def test_shard_assignment_is_stable_and_covering(self):
        from repro.serve.workers import ShardedWorkerPool

        pool = ShardedWorkerPool(shards=0)
        assert pool.num_shards == 1 and pool.inline
        pool4 = ShardedWorkerPool(shards=4)
        keys = [f"topo-{i}" for i in range(64)]
        shards = [pool4.shard_of(k) for k in keys]
        assert shards == [pool4.shard_of(k) for k in keys]  # stable
        assert set(shards) == {0, 1, 2, 3}  # all shards used

    def test_bad_mode_rejected(self):
        from repro.serve.workers import ShardedWorkerPool

        with pytest.raises(ValueError, match="mode"):
            ShardedWorkerPool(mode="warp")

    def test_unknown_topology_without_graph_raises(self):
        from repro.serve.protocol import SolveRequest
        from repro.serve.workers import ShardedWorkerPool

        async def scenario():
            pool = ShardedWorkerPool(shards=0)
            await pool.start()
            with pytest.raises(ProtocolError) as excinfo:
                await pool.solve_batch(
                    "missing", [SolveRequest(topology="missing")], None
                )
            assert excinfo.value.code == "unknown-topology"
            assert excinfo.value.status == 404
            await pool.close()

        run(scenario())

    def test_worker_session_lru_recovers_via_retry(self):
        """Evicted topologies are re-materialized from the stored graph."""
        from repro.graphs.families import make_family_instance
        from repro.serve.protocol import (
            SolveRequest, fingerprint_graph, graph_payload,
        )
        from repro.serve.workers import ShardedWorkerPool

        payloads = [
            graph_payload(make_family_instance("cycle_chords", 12, seed=s))
            for s in (1, 2)
        ]
        keys = [fingerprint_graph(p) for p in payloads]

        async def scenario():
            # max_sessions=1: registering the second topology evicts the
            # first from the worker, while the pool still believes the
            # shard knows it — the retry path must recover.
            pool = ShardedWorkerPool(
                shards=0, settings={"max_sessions": 1}
            )
            await pool.start()
            for key, payload in zip(keys, payloads):
                items = await pool.solve_batch(
                    key, [SolveRequest(topology=key)], payload
                )
                assert "result" in items[0]
            items = await pool.solve_batch(
                keys[0], [SolveRequest(topology=keys[0])], payloads[0]
            )
            assert "result" in items[0]
            await pool.close()

        run(scenario())


class TestFlushFallback:
    def test_flush_uses_batched_request_graph_when_store_evicted(self):
        """A registration evicted from the dispatcher store while its own
        request sat in the batcher must still solve (inline fallback)."""
        from repro.graphs.families import make_family_instance
        from repro.serve.app import ServeApp, ServeConfig
        from repro.serve.protocol import graph_payload, parse_solve_request

        payload = graph_payload(
            make_family_instance("cycle_chords", 14, seed=3)
        )

        async def scenario():
            app = ServeApp(ServeConfig(workers=0))
            await app.startup()
            try:
                request = parse_solve_request(
                    {"graph": payload, "eps": 0.5}
                )
                # Simulate the race: the store never saw (or evicted) the
                # topology, but the batched request carries the graph.
                assert request.topology not in app._topologies
                items = await app._flush(request.topology, [request])
                assert "result" in items[0]
            finally:
                await app.shutdown()

        run(scenario())


class TestMetrics:
    def test_histogram_buckets_and_quantiles(self):
        hist = LatencyHistogram()
        for ms in (0.5, 1.5, 3.0, 30.0, 30.0, 30.0, 2000.0):
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 7
        assert snap["buckets"]["le_1ms"] == 1
        assert snap["buckets"]["le_2ms"] == 1
        assert snap["buckets"]["le_5ms"] == 1
        assert snap["buckets"]["le_50ms"] == 3
        assert snap["buckets"]["le_2500ms"] == 1
        assert snap["p50_ms"] == 50.0  # upper bound of the median bucket
        assert snap["max_ms"] == 2000.0
        empty = LatencyHistogram().snapshot()
        assert empty["count"] == 0 and empty["p99_ms"] == 0.0

    def test_counters_and_routes(self):
        metrics = ServeMetrics()
        metrics.inc("a")
        metrics.inc("a", 2)
        metrics.observe("POST /v1/solve", 0.003)
        snap = metrics.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["latency"]["POST /v1/solve"]["count"] == 1

    def test_empty_histogram_quantiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.quantile_ms(0.5) == 0.0
        assert hist.quantile_ms(0.99) == 0.0
        snap = hist.snapshot()
        assert snap["mean_ms"] == 0.0 and snap["max_ms"] == 0.0
        assert all(n == 0 for n in snap["buckets"].values())

    def test_observation_above_last_bound_lands_in_inf(self):
        hist = LatencyHistogram()
        hist.observe(120.0)  # 120s, way past the 30s top bound
        snap = hist.snapshot()
        assert snap["buckets"]["inf"] == 1
        # Quantiles above the table fall back to the observed max.
        assert snap["p99_ms"] == pytest.approx(120000.0)

    def test_counters_survive_very_large_totals(self):
        # Python ints are unbounded; the snapshot must carry the exact
        # value rather than saturating or rounding through floats.
        metrics = ServeMetrics()
        big = 2**63
        metrics.inc("requests", big)
        metrics.inc("requests", 1)
        assert metrics.snapshot()["counters"]["requests"] == big + 1

    def test_concurrent_observe_loses_no_updates(self):
        # counters[name] += by spans several bytecodes; without the
        # internal lock, racing writers drop increments.
        metrics = ServeMetrics()
        threads_n, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                metrics.inc("hits")
                metrics.observe("route", 0.001)
                metrics.observe_size("batch", 2)

        workers = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        snap = metrics.snapshot()
        total = threads_n * per_thread
        assert snap["counters"]["hits"] == total
        assert snap["latency"]["route"]["count"] == total
        assert snap["sizes"]["batch"]["count"] == total
