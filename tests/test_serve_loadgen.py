"""End-to-end load-generator tests against a spawned in-process server."""

from __future__ import annotations

import pytest

from repro.serve.app import ServeConfig
from repro.serve.loadgen import LoadgenConfig, run_loadgen


def _cfg(**overrides) -> LoadgenConfig:
    base = dict(
        duration_s=1.5, topologies=3, size=24, scenarios=2,
        concurrency=3, seed=7, eps=0.5,
        families=("cycle_chords", "grid"),
    )
    base.update(overrides)
    return LoadgenConfig(**base)


def test_closed_loop_spawned_run_has_zero_errors():
    summary = run_loadgen(_cfg(), spawn=ServeConfig(workers=0))
    assert summary["mode"] == "closed"
    assert summary["ok"] > 0
    assert summary["protocol_errors"] == 0
    assert summary["transport_errors"] == 0
    assert summary["ok"] == summary["requests"]
    assert summary["throughput_rps"] > 0
    assert summary["latency_ms"]["p50"] > 0
    # Every topology registration happened at most once per topology.
    assert summary["reregistrations"] == 0


def test_open_loop_spawned_run():
    summary = run_loadgen(
        _cfg(mode="open", rate=30.0, duration_s=1.0),
        spawn=ServeConfig(workers=0),
    )
    assert summary["mode"] == "open"
    assert summary["protocol_errors"] == 0
    assert summary["ok"] > 0


def test_request_cap_stops_early():
    summary = run_loadgen(
        _cfg(requests=5, duration_s=30.0), spawn=ServeConfig(workers=0)
    )
    assert summary["requests"] == 5
    assert summary["duration_s"] < 25.0


def test_unreachable_server_raises():
    with pytest.raises(OSError):
        run_loadgen(_cfg(port=1, duration_s=0.2))
