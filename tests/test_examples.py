"""Every example script must run end to end (they assert internally)."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart",
    "session_scenarios",
    "resilient_backbone",
    "planar_fast_approximation",
    "congest_simulation",
    "paper_figures",
]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
