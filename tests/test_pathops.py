"""Unit tests for batch vertical-path operations (centralized Claims 4.5/4.6)."""

from __future__ import annotations

import random

import pytest

from repro.trees.pathops import TreePathOps
from repro.trees.segtree import INF, RangeAddPoint, RangeChmin

from conftest import TREE_SHAPES, random_tree, random_vertical_edges


class TestSegtree:
    def test_chmin_brute_force(self):
        rng = random.Random(0)
        n = 37
        st = RangeChmin(n)
        ref = [INF] * n
        for _ in range(300):
            lo = rng.randrange(n)
            hi = rng.randrange(lo, n)
            val = rng.random()
            st.update(lo, hi, val)
            for i in range(lo, hi + 1):
                ref[i] = min(ref[i], val)
            i = rng.randrange(n)
            assert st.query(i) == ref[i]

    def test_chmin_tuple_values(self):
        st = RangeChmin(10)
        st.update(0, 9, (5.0, "a"))
        st.update(3, 5, (2.0, "b"))
        assert st.query(4) == (2.0, "b")
        assert st.query(8) == (5.0, "a")
        assert st.query(0) == (5.0, "a")

    def test_chmin_empty_range(self):
        st = RangeChmin(5)
        st.update(3, 2, 1.0)
        assert st.query(3) == INF

    def test_add_point_brute_force(self):
        rng = random.Random(1)
        n = 29
        bit = RangeAddPoint(n)
        ref = [0.0] * n
        for _ in range(300):
            lo = rng.randrange(n)
            hi = rng.randrange(lo, n)
            delta = rng.randint(-3, 3)
            bit.add(lo, hi, delta)
            for i in range(lo, hi + 1):
                ref[i] += delta
            i = rng.randrange(n)
            assert bit.query(i) == pytest.approx(ref[i])


@pytest.mark.parametrize("shape", TREE_SHAPES)
class TestPathOps:
    def test_ancestor_sums(self, shape):
        t = random_tree(60, seed=2, shape=shape)
        rng = random.Random(3)
        values = [0.0] + [rng.uniform(0, 5) for _ in range(t.n - 1)]
        values[t.root] = 0.0
        ops = TreePathOps(t)
        cum = ops.ancestor_sums(values)
        for v in range(t.n):
            expected = sum(values[x] for x in t.chain(v, t.root))
            assert cum[v] == pytest.approx(expected)

    def test_path_sum(self, shape):
        t = random_tree(50, seed=4, shape=shape)
        rng = random.Random(5)
        values = [rng.uniform(0, 5) for _ in range(t.n)]
        values[t.root] = 0.0
        ops = TreePathOps(t)
        cum = ops.ancestor_sums(values)
        for dec, anc in random_vertical_edges(t, 100, seed=6):
            expected = sum(values[x] for x in t.chain(dec, anc))
            assert ops.path_sum(cum, dec, anc) == pytest.approx(expected)

    def test_chmin_over_paths(self, shape):
        t = random_tree(55, seed=7, shape=shape)
        edges = random_vertical_edges(t, 80, seed=8)
        rng = random.Random(9)
        updates = [(dec, anc, (rng.uniform(0, 10), i)) for i, (dec, anc) in enumerate(edges)]
        ops = TreePathOps(t)
        res = ops.chmin_over_paths(updates)
        for v in t.tree_edges():
            vals = [val for dec, anc, val in updates if t.covers_vertical(dec, anc, v)]
            if vals:
                assert res.get(v) == min(vals)
                assert res.covered(v)
            else:
                assert res.get(v) == INF
                assert not res.covered(v)

    def test_add_over_paths_counts(self, shape):
        t = random_tree(45, seed=10, shape=shape)
        edges = random_vertical_edges(t, 70, seed=11)
        ops = TreePathOps(t)
        counts = ops.coverage_counts(edges)
        for v in t.tree_edges():
            expected = sum(1 for dec, anc in edges if t.covers_vertical(dec, anc, v))
            assert counts[v] == expected


class TestCoverageCounter:
    def test_incremental_matches_batch(self):
        t = random_tree(50, seed=12)
        edges = random_vertical_edges(t, 60, seed=13)
        ops = TreePathOps(t)
        counter = ops.make_coverage_counter()
        live: list[tuple[int, int]] = []
        rng = random.Random(14)
        pool = list(edges)
        for step in range(120):
            if pool and (not live or rng.random() < 0.6):
                e = pool.pop()
                counter.add_path(*e)
                live.append(e)
            else:
                e = live.pop(rng.randrange(len(live)))
                counter.remove_path(*e)
            v = rng.randrange(1, t.n)
            expected = sum(1 for dec, anc in live if t.covers_vertical(dec, anc, v))
            assert counter.count(v) == expected
            assert counter.is_covered(v) == (expected > 0)
