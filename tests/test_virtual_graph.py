"""Tests for the virtual graph G' (paper Section 4.1, Lemma 4.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.virtual_graph import VirtualEdge, build_virtual_edges, map_back

from conftest import TREE_SHAPES, random_tree


@pytest.mark.parametrize("shape", TREE_SHAPES)
class TestConstruction:
    def test_all_edges_vertical(self, shape):
        t = random_tree(50, seed=1, shape=shape)
        rng = random.Random(2)
        links = []
        for _ in range(120):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            if u != v:
                links.append((u, v, rng.uniform(1, 10)))
        edges = build_virtual_edges(t, links)
        for e in edges:
            assert t.is_strict_ancestor(e.anc, e.dec)

    def test_same_coverage(self, shape):
        # Lemma 4.1's backbone: the virtual replacements of a link cover
        # exactly the tree edges of the original tree path.
        t = random_tree(50, seed=3, shape=shape)
        rng = random.Random(4)
        for _ in range(150):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            if u == v:
                continue
            edges = build_virtual_edges(t, [(u, v, 1.0)])
            covered = set()
            for e in edges:
                covered.update(t.chain(e.dec, e.anc))
            assert covered == set(t.path_edges(u, v))

    def test_split_count(self, shape):
        # A link splits into 2 edges iff its LCA is interior to its path.
        t = random_tree(50, seed=5, shape=shape)
        rng = random.Random(6)
        for _ in range(100):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            if u == v:
                continue
            w = t.lca(u, v)
            edges = build_virtual_edges(t, [(u, v, 1.0)])
            if w in (u, v):
                assert len(edges) == 1
            else:
                assert len(edges) == 2
                assert all(e.anc == w for e in edges)
                assert {e.dec for e in edges} == {u, v}


class TestWeightsAndOrigins:
    def test_weights_copied_not_halved(self):
        t = random_tree(20, seed=7, shape="binary")
        # find a non-vertical pair
        pair = None
        for u in range(t.n):
            for v in range(t.n):
                if u != v and t.lca(u, v) not in (u, v):
                    pair = (u, v)
                    break
            if pair:
                break
        assert pair is not None
        edges = build_virtual_edges(t, [(*pair, 7.5)])
        assert [e.weight for e in edges] == [7.5, 7.5]

    def test_origin_defaults_and_custom(self):
        t = random_tree(12, seed=8, shape="star")
        links = [(1, 2, 1.0), (3, 4, 2.0)]
        edges = build_virtual_edges(t, links)
        assert {e.origin for e in edges} == {(1, 2), (3, 4)}
        edges2 = build_virtual_edges(t, links, origins=["a", "b"])
        assert {e.origin for e in edges2} == {"a", "b"}

    def test_map_back_dedupes(self):
        t = random_tree(12, seed=9, shape="star")
        edges = build_virtual_edges(t, [(1, 2, 1.0)])
        assert len(edges) == 2  # star: LCA of two leaves is the centre
        assert map_back(edges, [e.eid for e in edges]) == [(1, 2)]

    def test_tree_edge_link_is_kept_vertical(self):
        t = random_tree(10, shape="path")
        edges = build_virtual_edges(t, [(3, 4, 1.0)])
        assert len(edges) == 1
        assert (edges[0].dec, edges[0].anc) == (4, 3)

    def test_eids_sequential(self):
        t = random_tree(30, seed=10)
        rng = random.Random(11)
        links = []
        for _ in range(20):
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            if u != v:
                links.append((u, v, 1.0))
        edges = build_virtual_edges(t, links)
        assert [e.eid for e in edges] == list(range(len(edges)))
