"""Unit tests for the numpy kernels against the reference tree machinery.

Every kernel in :mod:`repro.fast.kernels` claims exactness (bit-identical
floats for the ancestor sums, exact integers everywhere else); these tests
hold each one to the corresponding reference primitive over the shared
random-tree shapes, plus the array backends of the layering and segment
decompositions against their reference constructions.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from conftest import TREE_SHAPES, random_tree, random_vertical_edges

from repro.decomp.layering import Layering
from repro.decomp.segments import SegmentDecomposition
from repro.fast import HAVE_NUMPY, resolve_backend
from repro.fast.kernels import INT_SENTINEL
from repro.fast.treearrays import TreeArrays
from repro.trees.pathops import TreePathOps


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("n", [2, 3, 17, 90])
def test_ancestor_sums_bit_identical(shape: str, n: int) -> None:
    tree = random_tree(n, seed=7, shape=shape)
    ta = TreeArrays(tree)
    ops = TreePathOps(tree)
    rng = random.Random(3)
    values = [rng.uniform(-5, 5) for _ in range(n)]
    ref = ops.ancestor_sums(values)
    fast = ta.ancestor_sums(np.asarray(values))
    assert [float(x) for x in fast] == ref  # equality, not approx: bit-identical


@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_coverage_counts_exact(shape: str) -> None:
    tree = random_tree(60, seed=11, shape=shape)
    ta = TreeArrays(tree)
    ops = TreePathOps(tree)
    paths = random_vertical_edges(tree, 40, seed=5)
    ref = ops.coverage_counts(paths)
    dec = np.asarray([d for d, _ in paths])
    anc = np.asarray([a for _, a in paths])
    fast = ta.path_cover_counts(dec, anc)
    assert fast.tolist() == ref


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("n", [2, 5, 33, 128])
def test_batch_lca_matches_tree(shape: str, n: int) -> None:
    tree = random_tree(n, seed=13, shape=shape)
    ta = TreeArrays(tree)
    rng = random.Random(n)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(120)]
    us = np.asarray([u for u, _ in pairs])
    vs = np.asarray([v for _, v in pairs])
    got = ta.batch_lca(us, vs)
    assert got.tolist() == [tree.lca(u, v) for u, v in pairs]


@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_path_chmin_float_matches_reference(shape: str) -> None:
    tree = random_tree(70, seed=23, shape=shape)
    ta = TreeArrays(tree)
    ops = TreePathOps(tree)
    rng = random.Random(9)
    paths = random_vertical_edges(tree, 50, seed=8)
    vals = [rng.uniform(0, 10) for _ in paths]
    ref = ops.chmin_over_paths(
        (dec, anc, (v, i)) for i, ((dec, anc), v) in enumerate(zip(paths, vals))
    )
    dec = np.asarray([d for d, _ in paths])
    anc = np.asarray([a for _, a in paths])
    fast = ta.path_chmin(dec, anc, np.asarray(vals), np.inf)
    for t in tree.tree_edges():
        got = ref.get(t)
        if got == ref.identity:
            assert np.isinf(fast[t])
        else:
            assert fast[t] == got[0]


@pytest.mark.parametrize("shape", TREE_SHAPES)
def test_path_chmin_int_keys_lexicographic(shape: str) -> None:
    """Integer-encoded (primary, index) keys reproduce tuple-chmin argmins."""
    tree = random_tree(55, seed=31, shape=shape)
    ta = TreeArrays(tree)
    ops = TreePathOps(tree)
    rng = random.Random(2)
    paths = random_vertical_edges(tree, 35, seed=4)
    primary = [rng.randrange(6) for _ in paths]  # many ties: exercises index tie-break
    ref = ops.chmin_over_paths(
        (dec, anc, (p, i)) for i, ((dec, anc), p) in enumerate(zip(paths, primary))
    )
    m = len(paths)
    dec = np.asarray([d for d, _ in paths])
    anc = np.asarray([a for _, a in paths])
    key = np.asarray(primary, dtype=np.int64) * m + np.arange(m)
    fast = ta.path_chmin(dec, anc, key, INT_SENTINEL)
    for t in tree.tree_edges():
        got = ref.get(t)
        if got == ref.identity:
            assert fast[t] == INT_SENTINEL
        else:
            assert (int(fast[t]) // m, int(fast[t]) % m) == got


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("n", [1, 2, 3, 9, 64, 257])
def test_layering_array_backend_identical(shape: str, n: int) -> None:
    tree = random_tree(n, seed=n, shape=shape)
    ref = Layering(tree, backend="reference")
    arr = Layering(tree, backend="array")
    assert arr.layer == ref.layer
    assert arr.num_layers == ref.num_layers
    assert arr.path_id == ref.path_id
    assert arr.paths == ref.paths


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("segment_size", [None, 4])
def test_segments_array_backend_identical(shape: str, segment_size) -> None:
    tree = random_tree(120, seed=5, shape=shape)
    ref = SegmentDecomposition(tree, s=segment_size, backend="reference")
    arr = SegmentDecomposition(tree, s=segment_size, backend="array")
    assert arr.seg_of_edge == ref.seg_of_edge
    assert arr.on_highway == ref.on_highway
    assert arr.boundary == ref.boundary
    assert arr.skeleton_parent == ref.skeleton_parent
    assert [
        (s.sid, s.r, s.d, s.highway, s.highway_edges, s.attached)
        for s in arr.segments
    ] == [
        (s.sid, s.r, s.d, s.highway, s.highway_edges, s.attached)
        for s in ref.segments
    ]


def test_resolve_backend() -> None:
    assert resolve_backend("reference") == "reference"
    assert resolve_backend("auto") == ("fast" if HAVE_NUMPY else "reference")
    assert resolve_backend("fast") == "fast"
    with pytest.raises(ValueError):
        resolve_backend("warp-drive")
