"""Unit tests for the heavy-light decomposition."""

from __future__ import annotations

import math
import random

import pytest

from repro.trees.heavy_light import HeavyLightDecomposition

from conftest import TREE_SHAPES, random_tree


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("mode", ["max-child", "majority"])
class TestStructure:
    def test_heavy_paths_partition_vertices(self, shape, mode):
        t = random_tree(80, seed=1, shape=shape)
        hld = HeavyLightDecomposition(t, mode=mode)
        seen = []
        for path in hld.heavy_paths():
            seen.extend(path)
            # a heavy path is a descending chain
            for a, b in zip(path, path[1:]):
                assert t.parent[b] == a
                assert hld.heavy_child[a] == b
        assert sorted(seen) == list(range(t.n))

    def test_positions_contiguous_per_path(self, shape, mode):
        t = random_tree(80, seed=2, shape=shape)
        hld = HeavyLightDecomposition(t, mode=mode)
        for path in hld.heavy_paths():
            positions = [hld.pos[v] for v in path]
            assert positions == list(range(positions[0], positions[0] + len(path)))
            assert all(hld.head[v] == path[0] for v in path)

    def test_light_edge_bound(self, shape, mode):
        # Every root path crosses at most log2(n) light edges.
        t = random_tree(200, seed=3, shape=shape)
        hld = HeavyLightDecomposition(t, mode=mode)
        bound = math.log2(t.n)
        for v in range(t.n):
            assert hld.num_light_on_root_path(v) <= bound + 1

    def test_light_edges_are_on_root_path(self, shape, mode):
        t = random_tree(60, seed=4, shape=shape)
        hld = HeavyLightDecomposition(t, mode=mode)
        for v in range(t.n):
            for child in hld.light_edges_on_root_path(v):
                assert t.is_ancestor(child, v)
                assert not hld.is_heavy_edge(child)


class TestMajorityMode:
    def test_majority_definition(self):
        # Definition 5.3: edge to child u is heavy iff |T_u| > |T_v| / 2.
        t = random_tree(120, seed=5)
        hld = HeavyLightDecomposition(t, mode="majority")
        sizes = t.subtree_sizes()
        for v in range(t.n):
            for c in t.children[v]:
                expected = 2 * sizes[c] > sizes[v]
                assert (hld.heavy_child[v] == c) == expected

    def test_max_child_always_has_heavy(self):
        t = random_tree(120, seed=5)
        hld = HeavyLightDecomposition(t, mode="max-child")
        for v in range(t.n):
            assert (hld.heavy_child[v] == -1) == (not t.children[v])

    def test_rejects_unknown_mode(self):
        t = random_tree(5, seed=0)
        with pytest.raises(ValueError):
            HeavyLightDecomposition(t, mode="bogus")


class TestVerticalRanges:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_ranges_cover_exactly_the_chain(self, shape):
        t = random_tree(70, seed=6, shape=shape)
        hld = HeavyLightDecomposition(t)
        rng = random.Random(0)
        for _ in range(300):
            dec = rng.randrange(t.n)
            anc = t.ancestor_at_depth(dec, rng.randrange(t.depth[dec] + 1))
            covered = set()
            for lo, hi in hld.vertical_ranges(dec, anc):
                assert lo <= hi
                for p in range(lo, hi + 1):
                    v = hld.order_by_pos[p]
                    assert v not in covered
                    covered.add(v)
            assert covered == set(t.chain(dec, anc))

    def test_range_count_logarithmic(self):
        t = random_tree(1000, seed=7)
        hld = HeavyLightDecomposition(t)
        rng = random.Random(1)
        bound = math.log2(t.n) + 2
        for _ in range(200):
            dec = rng.randrange(t.n)
            ranges = list(hld.vertical_ranges(dec, t.root))
            assert len(ranges) <= bound

    def test_empty_path(self):
        t = random_tree(20, seed=8)
        assert list(t.chain(5, 5)) == []
        hld = HeavyLightDecomposition(t)
        assert list(hld.vertical_ranges(5, 5)) == []
