"""Differential tests: scenario-vectorized solving and binary wire frames.

Three contracts from one PR, all bit-identity shaped:

* ``SolverSession.solve_batch_vectorized`` equals a looped
  :meth:`~repro.runtime.session.SolverSession.solve_many` — every result
  field, duals and anchors and certificates and primitive logs included —
  across every registered compute backend as the session default, with
  mixed-parameter batches split into the right groups and everything
  non-vectorizable falling back to the scalar path;
* the scenario-axis kernels (``*_2d``) equal their 1-D counterparts row
  by row, and :func:`repro.runtime.batch.stable_kruskal_mst` equals
  :func:`repro.core.tecss.rooted_mst` column by column;
* the ``RPF1`` binary frame codec round-trips, rejects malformed bytes
  with the structured ``bad-frame`` error, and a framed HTTP response
  decodes to the byte-identical JSON body a plain client receives.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random

import pytest

from repro.fast import HAVE_NUMPY
from repro.graphs.families import make_family_instance
from repro.runtime.session import SolveQuery, SolverSession
from repro.serve.protocol import (
    FRAME_CONTENT_TYPE,
    FRAME_MAGIC,
    ProtocolError,
    graph_payload,
    pack_frame,
    unpack_frame,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="scenario vectorization requires numpy"
)

COMPUTE_BACKENDS = ["reference"] + (["fast", "auto"] if HAVE_NUMPY else [])


def assert_results_equal(a, b) -> None:
    """Recursive field-by-field equality over dataclass result trees."""
    assert type(a) is type(b)
    if dataclasses.is_dataclass(a):
        for f in dataclasses.fields(a):
            assert_results_equal(getattr(a, f.name), getattr(b, f.name))
    elif isinstance(a, dict):
        assert a.keys() == b.keys()
        for key in a:
            assert_results_equal(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_results_equal(x, y)
    else:
        assert a == b


def perturbed_columns(graph, count, seed=7):
    """``count`` seeded multiplicative perturbations of the weight column."""
    base = [w for _, _, w in graph_payload(graph)["edges"]]
    rng = random.Random(seed)
    columns = []
    for _ in range(count):
        column = list(base)
        for i in rng.sample(range(len(base)), max(1, len(base) // 20)):
            column[i] = column[i] * rng.uniform(1.0, 3.0)
        columns.append(column)
    return columns


# ---------------------------------------------------------------------------
# the vectorized-vs-looped differential suite
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
def test_vectorized_bit_identical_to_looped(backend):
    graph = make_family_instance("cycle_chords", 26, seed=3)
    columns = perturbed_columns(graph, 6)
    queries = (
        [{"eps": 0.5, "weights": c} for c in columns[:4]]
        + [{"eps": 0.25, "weights": c} for c in columns[4:]]
        + [{"eps": 0.5}]                       # base column joins group 1
        + [{"eps": 0.5, "weights": columns[0]}]  # duplicate column
        + [{"eps": 0.5, "validate": False, "weights": c} for c in columns[:2]]
    )
    looped = SolverSession(graph, backend=backend).solve_many(queries)
    session = SolverSession(graph, backend=backend)
    batched = session.solve_batch_vectorized(queries)
    assert len(batched) == len(looped)
    for a, b in zip(batched, looped):
        assert_results_equal(a, b)
    stats = session.stats()
    assert stats["solves"] == len(queries)
    from repro.runtime.registry import resolve_compute

    if resolve_compute(backend) == "fast":
        # eps=0.5, eps=0.25, and the validate=False group.
        assert stats["vectorized_batches"] == 3
        assert stats["scalar_fallback"] == 0
    else:
        assert stats["vectorized_batches"] == 0
        assert stats["scalar_fallback"] == len(queries)


@needs_numpy
def test_mixed_batches_split_and_fall_back():
    graph = make_family_instance("grid", 25, seed=5)
    columns = perturbed_columns(graph, 4, seed=11)
    queries = [
        SolveQuery(eps=0.5, weights=columns[0], backend="fast"),
        SolveQuery(eps=0.5, weights=columns[1], backend="fast"),
        SolveQuery(eps=0.5, weights=columns[2], backend="reference"),
        SolveQuery(eps=1.0, weights=columns[3], backend="fast"),  # singleton
        SolveQuery(eps=0.5, backend="fast", engine="sim"),
    ]
    looped = SolverSession(graph).solve_many(queries)
    session = SolverSession(graph)
    batched = session.solve_batch_vectorized(queries)
    for a, b in zip(batched, looped):
        assert_results_equal(a, b)
    stats = session.stats()
    # One fused group (the two eps=0.5 fast queries); the reference query,
    # the demoted eps=1.0 singleton, and the sim query go scalar.
    assert stats["vectorized_batches"] == 1
    assert stats["scalar_fallback"] == 3


@needs_numpy
def test_vectorizable_gates():
    graph = make_family_instance("cycle_chords", 20, seed=1)
    session = SolverSession(graph, backend="fast")
    assert session._vectorizable(SolveQuery(eps=0.5))
    assert not session._vectorizable(SolveQuery(eps=0.5, k=3))
    assert not session._vectorizable(SolveQuery(eps=0.5, simulate_mst=True))
    assert not session._vectorizable(SolveQuery(eps=0.5, engine="sim"))
    assert not session._vectorizable(SolveQuery(eps=0.5, backend="reference"))
    assert not session._vectorizable(SolveQuery(eps=0.5, backend="warp"))
    assert not session._vectorizable(
        SolveQuery(eps=0.5, weights_delta={(0, 1): 2.0})
    )


def test_unknown_query_field_names_valid_fields():
    graph = make_family_instance("cycle_chords", 14, seed=2)
    session = SolverSession(graph)
    with pytest.raises(ValueError) as excinfo:
        session.solve_many([{"epz": 0.5}])
    message = str(excinfo.value)
    assert "unknown SolveQuery field(s) epz" in message
    assert "valid fields:" in message and "eps" in message


def test_solve_many_groups_by_weight_fingerprint():
    graph = make_family_instance("cycle_chords", 18, seed=4)
    column = perturbed_columns(graph, 1, seed=9)[0]
    session = SolverSession(graph)
    results = session.solve_many([
        {"eps": 0.5, "weights": column},
        {"eps": 0.25, "weights": column},   # same column, batch-local hit
        {"eps": 0.5, "weights": list(column)},  # equal copy, also a hit
    ])
    stats = session.stats()
    assert stats["plans_built"] == 1
    assert stats["plan_hits"] == 2
    single = SolverSession(graph)
    for query, result in zip(
        [{"eps": 0.5, "weights": column}, {"eps": 0.25, "weights": column},
         {"eps": 0.5, "weights": column}],
        results,
    ):
        assert_results_equal(result, single.solve(**query))


# ---------------------------------------------------------------------------
# kernel/structure parity
# ---------------------------------------------------------------------------


@needs_numpy
def test_stable_kruskal_matches_rooted_mst():
    from repro.core.tecss import rooted_mst
    from repro.runtime.batch import stable_kruskal_mst
    from repro.runtime.handle import GraphHandle

    for family, n, seed in [
        ("cycle_chords", 24, 0), ("grid", 25, 1), ("hub_cycle", 22, 2)
    ]:
        graph = make_family_instance(family, n, seed=seed)
        base = GraphHandle.from_graph(graph)
        for column in [None] + perturbed_columns(graph, 3, seed=seed):
            handle = base if column is None else base.reweight(column)
            _, expected = rooted_mst(handle.graph)
            assert stable_kruskal_mst(handle, handle.weights) == expected


@needs_numpy
def test_2d_kernels_match_rowwise_1d():
    import numpy as np

    graph = make_family_instance("cycle_chords", 30, seed=6)
    session = SolverSession(graph, backend="fast")
    inst = session.plan().instance("fast")
    arrays = inst.arrays
    ta = arrays.ta
    rng = np.random.default_rng(12)
    values2 = rng.uniform(0.0, 4.0, size=(5, ta.n))
    rows = [ta.ancestor_sums(values2[s]) for s in range(5)]
    assert np.array_equal(ta.ancestor_sums_2d(values2), np.stack(rows))

    delta2 = rng.integers(-2, 3, size=(5, ta.n)).astype(np.int64)
    rows = [ta.subtree_counts(delta2[s]) for s in range(5)]
    assert np.array_equal(ta.subtree_counts_2d(delta2), np.stack(rows))

    dec, anc = arrays.dec, arrays.anc
    vals2 = rng.uniform(0.0, 10.0, size=(5, len(dec)))
    rows = [ta.path_chmin(dec, anc, vals2[s], np.inf) for s in range(5)]
    assert np.array_equal(
        ta.path_chmin_2d(dec, anc, vals2, np.inf), np.stack(rows)
    )


@needs_numpy
def test_coverage_counts_2d_matches_scalar_counter():
    import numpy as np

    from repro.fast.context import FastCoverageCounter

    graph = make_family_instance("grid", 16, seed=8)
    session = SolverSession(graph, backend="fast")
    inst = session.plan().instance("fast")
    arrays = inst.arrays
    ta = arrays.ta
    rng = random.Random(13)
    m = len(inst.edges)
    scenarios = []
    for _ in range(4):
        counter = FastCoverageCounter(ta)
        delta = np.zeros(ta.n, dtype=np.int64)
        for eid in rng.sample(range(m), max(2, m // 3)):
            dec, anc = int(arrays.dec[eid]), int(arrays.anc[eid])
            counter.add_path(dec, anc)
            delta[dec] += 1
            delta[anc] -= 1
        scenarios.append((counter, delta))
    stacked = FastCoverageCounter.counts_2d(
        ta, np.stack([delta for _, delta in scenarios])
    )
    for s, (counter, _) in enumerate(scenarios):
        for v in range(ta.n):
            assert int(stacked[s, v]) == counter.count(v)


@needs_numpy
def test_batched_forward_matches_scalar_forward():
    import numpy as np

    from repro.fast.forward import forward_phase_fast, forward_phase_fast_batch
    from repro.runtime.batch import (
        _group_instance,
        _seed_plan,
        _TreeGroup,
        stable_kruskal_mst,
    )
    from repro.runtime.handle import GraphHandle
    from repro.trees.rooted import RootedTree

    graph = make_family_instance("cycle_chords", 28, seed=10)
    base = GraphHandle.from_graph(graph)
    mst_edges = stable_kruskal_mst(base, base.weights)
    # Scale up only non-tree edges: the MST (and therefore the shared
    # structure every scenario derives from) is provably unchanged.
    pair_index = base._pair_index
    nontree = [
        i for i, e in enumerate(base.edge_list)
        if tuple(sorted(e[:2])) not in set(mst_edges)
    ]
    assert pair_index  # handles expose positions; sanity
    rng = random.Random(22)
    columns = [list(base.weights)]
    for _ in range(3):
        column = list(base.weights)
        for i in rng.sample(nontree, max(1, len(nontree) // 4)):
            column[i] = column[i] * rng.uniform(1.0, 2.5)
        columns.append(column)
    group = _TreeGroup(
        tree=RootedTree.from_edges(base.n, mst_edges, root=0),
        mst_edges=mst_edges,
    )
    instances = []
    for column in columns:
        handle = base.reweight(column)
        plan = _seed_plan(handle, group)
        instances.append(_group_instance(
            plan, group, np.asarray(handle.weights, dtype=np.float64)
        ))
    batch = forward_phase_fast_batch(instances, eps=0.25)
    for inst, fwd in zip(instances, batch):
        assert_results_equal(fwd, forward_phase_fast(inst, eps=0.25))


# ---------------------------------------------------------------------------
# the frame codec
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip_with_nested_refs(self):
        header = {
            "requests": [
                {"weights": {"__frame__": 0}, "eps": 0.5},
                {"weights": {"__frame__": 1},
                 "nested": [{"deep": {"__frame__": 0}}]},
            ]
        }
        arrays = [[1.0, 2.5, 3.25], [0.125, 4.0]]
        decoded = unpack_frame(pack_frame(header, arrays))
        assert decoded["requests"][0]["weights"] == arrays[0]
        assert decoded["requests"][1]["weights"] == arrays[1]
        assert decoded["requests"][1]["nested"][0]["deep"] == arrays[0]

    def test_zero_array_frame_is_exactly_the_header(self):
        payload = {"protocol": 1, "result": {"weight": 12.5, "links": [1, 2]}}
        frame = pack_frame(payload)
        assert frame.startswith(FRAME_MAGIC)
        assert unpack_frame(frame) == payload
        # The header bytes are the compact JSON serialization — the
        # byte-for-byte response contract depends on this.
        compact = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        assert compact in frame

    @pytest.mark.parametrize("mutate, what", [
        (lambda f: b"XXXX" + f[4:], "magic"),
        (lambda f: f[:10], "truncated header"),
        (lambda f: f + b"\x00", "trailing bytes"),
        (lambda f: f[:4] + (2 ** 30).to_bytes(4, "little") + f[8:],
         "oversized header length"),
    ])
    def test_malformed_frames_raise_bad_frame(self, mutate, what):
        frame = pack_frame({"a": 1}, [[1.0, 2.0]])
        with pytest.raises(ProtocolError) as excinfo:
            unpack_frame(mutate(frame))
        assert excinfo.value.code == "bad-frame", what

    def test_non_json_header_raises_bad_frame(self):
        head = b"not json"
        frame = (
            FRAME_MAGIC + len(head).to_bytes(4, "little") + head
            + (0).to_bytes(4, "little")
        )
        with pytest.raises(ProtocolError) as excinfo:
            unpack_frame(frame)
        assert excinfo.value.code == "bad-frame"

    def test_out_of_range_array_reference_raises_bad_frame(self):
        frame = pack_frame({"weights": {"__frame__": 3}}, [[1.0]])
        with pytest.raises(ProtocolError) as excinfo:
            unpack_frame(frame)
        assert excinfo.value.code == "bad-frame"


# ---------------------------------------------------------------------------
# the wire: framed requests/responses against the real stack
# ---------------------------------------------------------------------------


def serve_session(coro_fn):
    """Boot an inline-worker server, run ``coro_fn(server)``, tear down."""
    from repro.serve.app import ServeApp, ServeConfig
    from repro.serve.server import HttpServer

    async def main():
        server = HttpServer(ServeApp(ServeConfig(workers=0)), port=0)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.aclose()

    return asyncio.run(main())


async def raw_request(
    server, path: str, body: bytes, content_type: str, accept: str
) -> tuple[int, bytes, str]:
    """One raw round trip returning the untouched response body bytes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    try:
        writer.write((
            f"POST {path} HTTP/1.1\r\n"
            f"Host: x\r\nContent-Type: {content_type}\r\n"
            f"Accept: {accept}\r\nContent-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.decode("latin-1").split()[1])
        length, ctype = 0, ""
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            elif name.strip().lower() == "content-type":
                ctype = value.strip()
        return status, await reader.readexactly(length), ctype
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _batch_bodies(graph):
    """Equivalent framed and plain ``/v1/solve_batch`` bodies."""
    columns = perturbed_columns(graph, 2, seed=17)
    payload = graph_payload(graph)
    header = {"requests": [
        {"graph": payload, "weights": {"__frame__": k}, "eps": 0.5}
        for k in range(len(columns))
    ]}
    plain = {"requests": [
        {"graph": payload, "weights": columns[k], "eps": 0.5}
        for k in range(len(columns))
    ]}
    return header, columns, plain


def test_framed_request_equals_json_request():
    graph = make_family_instance("cycle_chords", 20, seed=14)
    header, columns, plain = _batch_bodies(graph)

    async def scenario(server):
        framed_status, framed_body, _ = await raw_request(
            server, "/v1/solve_batch", pack_frame(header, columns),
            FRAME_CONTENT_TYPE, "application/json",
        )
        plain_status, plain_body, _ = await raw_request(
            server, "/v1/solve_batch",
            json.dumps(plain).encode(), "application/json",
            "application/json",
        )
        return framed_status, framed_body, plain_status, plain_body

    framed_status, framed_body, plain_status, plain_body = serve_session(
        scenario
    )
    assert framed_status == plain_status == 200
    assert framed_body == plain_body


def test_framed_response_decodes_to_exact_json_body():
    graph = make_family_instance("grid", 16, seed=15)
    header, columns, _ = _batch_bodies(graph)

    async def scenario(server):
        body = pack_frame(header, columns)
        _, plain_body, plain_type = await raw_request(
            server, "/v1/solve_batch", body, FRAME_CONTENT_TYPE,
            "application/json",
        )
        _, frame_body, frame_type = await raw_request(
            server, "/v1/solve_batch", body, FRAME_CONTENT_TYPE,
            FRAME_CONTENT_TYPE,
        )
        return plain_body, plain_type, frame_body, frame_type

    plain_body, plain_type, frame_body, frame_type = serve_session(scenario)
    assert plain_type.startswith("application/json")
    assert frame_type.startswith(FRAME_CONTENT_TYPE)
    assert frame_body.startswith(FRAME_MAGIC)
    decoded = unpack_frame(frame_body)
    assert json.dumps(
        decoded, separators=(",", ":")
    ).encode("utf-8") == plain_body
    # Deterministic solves: the two independent requests answered equal.
    assert decoded == json.loads(plain_body)


def test_malformed_frame_body_gets_structured_error():
    async def scenario(server):
        return await raw_request(
            server, "/v1/solve_batch", b"garbage-not-a-frame",
            FRAME_CONTENT_TYPE, "application/json",
        )

    status, body, _ = serve_session(scenario)
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad-frame"


def test_framed_delta_request_equals_json_delta():
    graph = make_family_instance("cycle_chords", 18, seed=16)
    payload = graph_payload(graph)
    register = {"graph": payload, "eps": 0.5}
    edges = payload["edges"]
    delta_body = {
        "topology": None,  # filled after registration
        "delta": [[edges[0][0], edges[0][1], edges[0][2] * 2.0]],
        "eps": 0.5,
    }

    async def scenario(server):
        _, reg_body, _ = await raw_request(
            server, "/v1/solve", json.dumps(register).encode(),
            "application/json", "application/json",
        )
        delta_body["topology"] = json.loads(reg_body)["topology"]
        raw = json.dumps(delta_body).encode()
        _, plain, _ = await raw_request(
            server, "/v1/delta", raw, "application/json", "application/json"
        )
        _, framed, _ = await raw_request(
            server, "/v1/delta", pack_frame(delta_body), FRAME_CONTENT_TYPE,
            "application/json",
        )
        return plain, framed

    plain, framed = serve_session(scenario)
    assert plain == framed
    assert json.loads(plain)["result"]


# ---------------------------------------------------------------------------
# loadgen montecarlo smoke
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("binary", [False, True])
def test_loadgen_montecarlo_smoke(binary):
    from repro.serve.app import ServeConfig
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    cfg = LoadgenConfig(
        mode="montecarlo", duration_s=30.0, requests=3, concurrency=1,
        batch=4, binary=binary, size=24, topologies=1, scenarios=2,
        drift_edges=0.05, seed=3,
    )
    summary = run_loadgen(cfg, spawn=ServeConfig(workers=0))
    assert summary["mode"] == "montecarlo"
    assert summary["protocol_errors"] == 0
    assert summary["transport_errors"] == 0
    assert summary["ok"] >= 2 * cfg.batch  # post-registration scenarios
    assert summary["frames"] == (summary["requests"] if binary else 0)
    solver = summary["solver"]
    # Past the registration round the batches are compatible scenario
    # groups over one topology: the vectorized path must have engaged.
    assert solver["vectorized_batches"] >= 1
