"""Tests for the benchmark-history reporting half of observability.

Two layers under test: ``benchmarks/history.py`` (the append-only JSONL
writer — stamp integrity, sample summaries) and :mod:`repro.obs.report`
(the rolling-median trend gate behind ``python -m repro bench report``).
The acceptance-criteria scenario lives in
:func:`test_check_catches_synthetic_regression`: a fixture history whose
latest run regressed >20% must fail the gate, and the healthy variant
must pass.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

import history  # noqa: E402  (benchmarks/history.py, script-style import)

from repro.obs.report import (  # noqa: E402
    check_trends,
    compute_trends,
    load_history,
    metric_direction,
    render_report,
)


# ---------------------------------------------------------------------------
# benchmarks/history.py
# ---------------------------------------------------------------------------


def test_append_history_appends_jsonl(tmp_path, monkeypatch):
    monkeypatch.setattr(history, "HISTORY_DIR", str(tmp_path))
    path = history.append_history("demo", {"solve_s": 1.5})
    history.append_history("demo", {"solve_s": 1.25})
    assert path == str(tmp_path / "demo.jsonl")
    lines = (tmp_path / "demo.jsonl").read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["solve_s"] == 1.5
    assert first["benchmark"] == "demo"
    assert "at" in first and "host" in first


def test_append_history_stamps_cannot_be_overridden(tmp_path, monkeypatch):
    """Regression test: stamps are applied after the record is spread.

    A record carrying its own ``benchmark``/``at``/``commit``/``host``
    keys must not masquerade as a different run — the bug was
    ``{"at": ..., **record}``, which let the record win.
    """
    monkeypatch.setattr(history, "HISTORY_DIR", str(tmp_path))
    forged = {
        "solve_s": 0.1,
        "benchmark": "someone_else",
        "at": "1970-01-01T00:00:00+00:00",
        "commit": "deadbeef",
        "host": "forged-host",
    }
    history.append_history("real_name", forged)
    (line,) = (tmp_path / "real_name.jsonl").read_text().splitlines()
    record = json.loads(line)
    assert record["benchmark"] == "real_name"
    assert record["at"] != "1970-01-01T00:00:00+00:00"
    assert record["host"] != "forged-host"
    assert record["commit"] != "deadbeef"
    assert record["solve_s"] == 0.1  # the payload itself survives


def test_sample_stats_summary():
    stats = history.sample_stats([4.0, 1.0, 2.0, 3.0])
    assert stats["n"] == 4
    assert stats["median"] == pytest.approx(2.5)
    assert stats["min"] == 1.0 and stats["max"] == 4.0
    assert stats["iqr"] == pytest.approx(1.5)  # q3=3.25, q1=1.75
    single = history.sample_stats([7.0])
    assert single["median"] == 7.0 and single["iqr"] == 0.0


def test_sample_stats_rejects_empty():
    with pytest.raises(ValueError):
        history.sample_stats([])


# ---------------------------------------------------------------------------
# repro.obs.report: direction inference and history loading
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "key,expected",
    [
        ("solve_s", "lower"),
        ("p99_ms", "lower"),
        ("noop_span_cost_us", "lower"),
        ("batch_latency", "lower"),
        ("wait_fraction", "lower"),
        ("rounds", "lower"),
        ("speedup", "higher"),
        ("throughput_rps", "higher"),
        ("throughput_s", "higher"),  # higher-tokens win over the _s suffix
        ("edges", None),
        ("cert_size", None),
    ],
)
def test_metric_direction(key, expected):
    assert metric_direction(key) == expected


def test_load_history_skips_garbage_lines(tmp_path):
    good = {"benchmark": "b", "solve_s": 1.0}
    (tmp_path / "b.jsonl").write_text(
        json.dumps(good) + "\n"
        + "\n"  # blank line
        + "{truncated by a crash\n"
        + '"not a dict"\n'
        + json.dumps({**good, "solve_s": 2.0}) + "\n"
    )
    (tmp_path / "notes.txt").write_text("ignored\n")
    histories = load_history(str(tmp_path))
    assert list(histories) == ["b"]
    assert [r["solve_s"] for r in histories["b"]] == [1.0, 2.0]
    assert load_history(str(tmp_path / "missing")) == {}


# ---------------------------------------------------------------------------
# repro.obs.report: the rolling-median gate
# ---------------------------------------------------------------------------


def _history(name, values, metric="solve_s", extra=None):
    records = [{metric: v, "benchmark": name} for v in values]
    if extra:
        records[-1].update(extra)
    return {name: records}


def test_check_catches_synthetic_regression():
    """Acceptance criterion: 3 steady priors, latest 1.5x slower -> FAIL."""
    trends = compute_trends(_history("tap", [1.0, 1.0, 1.0, 1.5]))
    (trend,) = trends
    assert trend.gated and trend.failed
    assert trend.regression == pytest.approx(0.5)
    assert trend.prior_median == 1.0 and trend.prior_count == 3
    assert check_trends(trends) == [trend]
    report = render_report(trends)
    assert "FAIL +50%" in report
    assert "1 regression(s)" in report


def test_within_threshold_passes():
    trends = compute_trends(_history("tap", [1.0, 1.0, 1.0, 1.15]))
    (trend,) = trends
    assert trend.gated and not trend.failed
    assert check_trends(trends) == []
    assert "ok" in render_report(trends)


def test_higher_is_better_direction_gates_drops():
    up = compute_trends(_history("thr", [100.0, 100.0, 100.0, 70.0], "rps"))
    assert up[0].failed and up[0].regression == pytest.approx(0.3)
    down = compute_trends(_history("thr", [100.0, 100.0, 100.0, 130.0], "rps"))
    assert not down[0].failed  # faster is never a regression


def test_min_prior_leaves_young_histories_ungated():
    trends = compute_trends(_history("tap", [1.0, 1.0, 9.0]))  # 2 priors
    (trend,) = trends
    assert not trend.gated and not trend.failed
    assert trend.prior_count == 2
    assert "ungated" in render_report(trends)


def test_unrecognized_metric_reported_but_never_gated():
    trends = compute_trends(_history("tap", [10.0, 10.0, 10.0, 99.0], "edges"))
    (trend,) = trends
    assert trend.direction is None
    assert not trend.gated and not trend.failed


def test_window_bounds_the_baseline():
    # Old slow era, then 10 fast runs: the window must forget the slow era.
    values = [9.0] * 5 + [1.0] * 10 + [1.1]
    trends = compute_trends(_history("tap", values), window=10)
    (trend,) = trends
    assert trend.prior_median == 1.0 and trend.prior_count == 10
    assert not trend.failed


def test_nested_records_flatten_to_dotted_metrics():
    record = {
        "benchmark": "obs",
        "enabled_solve_s": {"median": 2.0, "iqr": 0.1, "n": 7.0},
        "gates": {"passed": True},  # bools are never metrics
    }
    trends = compute_trends({"obs": [record]})
    metrics = {t.metric for t in trends}
    assert "enabled_solve_s.median" in metrics
    assert "enabled_solve_s.n" in metrics
    assert not any("passed" in m for m in metrics)
    # fresh history: everything reported, nothing gated
    assert check_trends(trends) == []


def test_render_report_empty_history():
    assert "no history" in render_report([])


def test_end_to_end_from_files(tmp_path):
    """load_history -> compute_trends over a real on-disk fixture pair."""
    steady = [{"benchmark": "a", "wall_s": 1.0} for _ in range(4)]
    (tmp_path / "a.jsonl").write_text(
        "".join(json.dumps(r) + "\n" for r in steady)
    )
    regressed = [{"benchmark": "b", "wall_s": 1.0} for _ in range(3)]
    regressed.append({"benchmark": "b", "wall_s": 2.0})
    (tmp_path / "b.jsonl").write_text(
        "".join(json.dumps(r) + "\n" for r in regressed)
    )
    trends = compute_trends(load_history(str(tmp_path)))
    failing = check_trends(trends)
    assert [(t.benchmark, t.metric) for t in failing] == [("b", "wall_s")]
    assert failing[0].regression == pytest.approx(1.0)
