"""The distributed layering program agrees with the centralized layering."""

from __future__ import annotations

import pytest

from repro.decomp.layering import Layering
from repro.model.layering_program import run_distributed_layering

from conftest import TREE_SHAPES, random_tree, tree_as_networkx


@pytest.mark.parametrize("shape", TREE_SHAPES)
@pytest.mark.parametrize("seed", [1, 2])
def test_matches_centralized(shape, seed):
    t = random_tree(60, seed=seed, shape=shape)
    g = tree_as_networkx(t)
    for u, v, d in g.edges(data=True):
        d["weight"] = 1.0
    out = run_distributed_layering(g, t.parent, t.root)
    ref = Layering(t)
    assert out.layer == ref.layer
    assert out.num_layers == ref.num_layers
    assert out.stats.rounds > 0


def test_rounds_scale_with_layers_times_height():
    t = random_tree(200, seed=3, shape="binary")
    g = tree_as_networkx(t)
    for u, v, d in g.edges(data=True):
        d["weight"] = 1.0
    out = run_distributed_layering(g, t.parent, t.root)
    # each layer costs at most one convergecast over the tree (+2 rounds)
    assert out.stats.rounds <= out.num_layers * (t.height + 3)


def test_single_path_one_layer():
    t = random_tree(15, shape="path")
    g = tree_as_networkx(t)
    for u, v, d in g.edges(data=True):
        d["weight"] = 1.0
    out = run_distributed_layering(g, t.parent, t.root)
    assert out.num_layers == 1
