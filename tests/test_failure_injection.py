"""Failure injection: malformed inputs must fail loudly and precisely.

A downstream user's first contact with the library is usually a bad input;
every public entry point must reject it with the documented exception, not
a deep stack trace from an internal invariant.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

import repro
from repro.baselines.exact_milp import brute_force_tap, exact_tap_milp
from repro.baselines.greedy_tap import greedy_tap
from repro.core.instance import TAPInstance
from repro.core.tap import approximate_tap
from repro.exceptions import (
    GraphFormatError,
    NotATreeError,
    NotConnectedError,
    NotTwoEdgeConnectedError,
    ReproError,
    SimulationError,
)
from repro.model.network import Network
from repro.shortcuts.setcover import parallel_setcover_tap
from repro.shortcuts.tap_shortcut import shortcut_two_ecss
from repro.trees.rooted import RootedTree

from conftest import random_tap_links, random_tree


def weighted_cycle(n=6, w=1.0):
    g = nx.cycle_graph(n)
    for u, v in g.edges():
        g[u][v]["weight"] = w
    return g


class TestGraphInputs:
    def test_missing_weights(self):
        g = nx.cycle_graph(5)
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_nan_weight_rejected(self):
        g = weighted_cycle()
        g[0][1]["weight"] = float("nan")
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_negative_weight_rejected(self):
        g = weighted_cycle()
        g[0][1]["weight"] = -2.0
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_disconnected_rejected(self):
        g = nx.union(weighted_cycle(4), nx.relabel_nodes(weighted_cycle(4), lambda v: v + 10))
        with pytest.raises(NotConnectedError):
            repro.approximate_two_ecss(g)

    def test_bridge_rejected_everywhere(self):
        g = weighted_cycle(5)
        g.add_edge(0, 42, weight=1.0)
        for solver in (
            lambda: repro.approximate_two_ecss(g),
            lambda: shortcut_two_ecss(g),
        ):
            with pytest.raises(NotTwoEdgeConnectedError):
                solver()

    def test_self_loop_rejected(self):
        g = weighted_cycle()
        g.add_edge(2, 2, weight=1.0)
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_tiny_graph_rejected(self):
        g = nx.Graph()
        g.add_node("only")
        with pytest.raises(ReproError):
            repro.approximate_two_ecss(g)

    def test_all_exceptions_share_base(self):
        for exc in (
            GraphFormatError,
            NotATreeError,
            NotConnectedError,
            NotTwoEdgeConnectedError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)


class TestTapInputs:
    def test_infeasible_links_everywhere(self):
        tree = random_tree(8, shape="path")
        bad = [(7, 4, 1.0)]
        for solver in (
            lambda: approximate_tap(tree, bad),
            lambda: greedy_tap(tree, bad),
            lambda: exact_tap_milp(tree, bad),
            lambda: brute_force_tap(tree, bad),
            lambda: parallel_setcover_tap(tree, bad),
        ):
            with pytest.raises(NotTwoEdgeConnectedError):
                solver()

    def test_empty_links(self):
        tree = random_tree(5, shape="path")
        with pytest.raises(ReproError):
            approximate_tap(tree, [])

    def test_bad_eps_values(self):
        tree = random_tree(10, seed=1)
        links = random_tap_links(tree, 10, seed=2)
        for eps in (0.0, -1.0):
            with pytest.raises(ValueError):
                approximate_tap(tree, links, eps=eps)
        with pytest.raises(ValueError):
            approximate_tap(tree, links, variant="fancy")

    def test_huge_eps_still_valid(self):
        # eps = 100 is legal (a very loose guarantee) and must still produce
        # a valid cover.
        tree = random_tree(15, seed=3)
        links = random_tap_links(tree, 25, seed=4)
        res = approximate_tap(tree, links, eps=100.0)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())

    def test_link_endpoints_out_of_range(self):
        tree = random_tree(5, shape="path")
        with pytest.raises((IndexError, ReproError)):
            approximate_tap(tree, [(4, 17, 1.0)])


class TestTreeInputs:
    def test_cycle_in_parents(self):
        with pytest.raises(NotATreeError):
            RootedTree([-1, 2, 1], 0)

    def test_forest_rejected(self):
        with pytest.raises(NotATreeError):
            RootedTree.from_edges(5, [(0, 1), (2, 3)], root=0)

    def test_single_vertex_tap_trivial(self):
        tree = RootedTree([-1], 0)
        inst = TAPInstance.from_links(tree, [])
        inst.check_feasible()  # no tree edges to cover


class TestSimulatorInputs:
    def test_gap_in_node_ids(self):
        g = nx.Graph()
        g.add_edge(0, 7, weight=1.0)
        with pytest.raises(SimulationError):
            Network(g)

    def test_string_nodes(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=1.0)
        with pytest.raises(SimulationError):
            Network(g)
