"""Failure injection: malformed inputs must fail loudly and precisely.

A downstream user's first contact with the library is usually a bad input;
every public entry point must reject it with the documented exception, not
a deep stack trace from an internal invariant.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest

import repro
from repro.baselines.exact_milp import brute_force_tap, exact_tap_milp
from repro.baselines.greedy_tap import greedy_tap
from repro.core.instance import TAPInstance
from repro.core.tap import approximate_tap
from repro.exceptions import (
    GraphFormatError,
    NotATreeError,
    NotConnectedError,
    NotTwoEdgeConnectedError,
    ReproError,
    SimulationError,
)
from repro.model.network import Network
from repro.model.programs import DistributedBFS, FloodMin
from repro.shortcuts.setcover import parallel_setcover_tap
from repro.shortcuts.tap_shortcut import shortcut_two_ecss
from repro.sim import BatchedNetwork, FailurePlan, random_failure_plan
from repro.trees.rooted import RootedTree

from conftest import random_tap_links, random_tree


def weighted_cycle(n=6, w=1.0):
    g = nx.cycle_graph(n)
    for u, v in g.edges():
        g[u][v]["weight"] = w
    return g


class TestGraphInputs:
    def test_missing_weights(self):
        g = nx.cycle_graph(5)
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_nan_weight_rejected(self):
        g = weighted_cycle()
        g[0][1]["weight"] = float("nan")
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_negative_weight_rejected(self):
        g = weighted_cycle()
        g[0][1]["weight"] = -2.0
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_disconnected_rejected(self):
        g = nx.union(weighted_cycle(4), nx.relabel_nodes(weighted_cycle(4), lambda v: v + 10))
        with pytest.raises(NotConnectedError):
            repro.approximate_two_ecss(g)

    def test_bridge_rejected_everywhere(self):
        g = weighted_cycle(5)
        g.add_edge(0, 42, weight=1.0)
        for solver in (
            lambda: repro.approximate_two_ecss(g),
            lambda: shortcut_two_ecss(g),
        ):
            with pytest.raises(NotTwoEdgeConnectedError):
                solver()

    def test_self_loop_rejected(self):
        g = weighted_cycle()
        g.add_edge(2, 2, weight=1.0)
        with pytest.raises(GraphFormatError):
            repro.approximate_two_ecss(g)

    def test_tiny_graph_rejected(self):
        g = nx.Graph()
        g.add_node("only")
        with pytest.raises(ReproError):
            repro.approximate_two_ecss(g)

    def test_all_exceptions_share_base(self):
        for exc in (
            GraphFormatError,
            NotATreeError,
            NotConnectedError,
            NotTwoEdgeConnectedError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)


class TestTapInputs:
    def test_infeasible_links_everywhere(self):
        tree = random_tree(8, shape="path")
        bad = [(7, 4, 1.0)]
        for solver in (
            lambda: approximate_tap(tree, bad),
            lambda: greedy_tap(tree, bad),
            lambda: exact_tap_milp(tree, bad),
            lambda: brute_force_tap(tree, bad),
            lambda: parallel_setcover_tap(tree, bad),
        ):
            with pytest.raises(NotTwoEdgeConnectedError):
                solver()

    def test_empty_links(self):
        tree = random_tree(5, shape="path")
        with pytest.raises(ReproError):
            approximate_tap(tree, [])

    def test_bad_eps_values(self):
        tree = random_tree(10, seed=1)
        links = random_tap_links(tree, 10, seed=2)
        for eps in (0.0, -1.0):
            with pytest.raises(ValueError):
                approximate_tap(tree, links, eps=eps)
        with pytest.raises(ValueError):
            approximate_tap(tree, links, variant="fancy")

    def test_huge_eps_still_valid(self):
        # eps = 100 is legal (a very loose guarantee) and must still produce
        # a valid cover.
        tree = random_tree(15, seed=3)
        links = random_tap_links(tree, 25, seed=4)
        res = approximate_tap(tree, links, eps=100.0)
        covered = set()
        for u, v in res.links:
            covered.update(tree.path_edges(u, v))
        assert covered == set(tree.tree_edges())

    def test_link_endpoints_out_of_range(self):
        tree = random_tree(5, shape="path")
        with pytest.raises((IndexError, ReproError)):
            approximate_tap(tree, [(4, 17, 1.0)])


class TestTreeInputs:
    def test_cycle_in_parents(self):
        with pytest.raises(NotATreeError):
            RootedTree([-1, 2, 1], 0)

    def test_forest_rejected(self):
        with pytest.raises(NotATreeError):
            RootedTree.from_edges(5, [(0, 1), (2, 3)], root=0)

    def test_single_vertex_tap_trivial(self):
        tree = RootedTree([-1], 0)
        inst = TAPInstance.from_links(tree, [])
        inst.check_feasible()  # no tree edges to cover


class TestSimulatorInputs:
    def test_gap_in_node_ids(self):
        g = nx.Graph()
        g.add_edge(0, 7, weight=1.0)
        with pytest.raises(SimulationError):
            Network(g)

    def test_string_nodes(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=1.0)
        with pytest.raises(SimulationError):
            Network(g)


def _weighted_path(n):
    g = nx.path_graph(n)
    for _, _, d in g.edges(data=True):
        d["weight"] = 1.0
    return g


class TestFailureInjectionScenarios:
    """Edge-drop scenarios on the batched engine (transient-loss model)."""

    def test_severed_edge_partitions_bfs(self):
        # edge (2,3) down forever: BFS from 0 must stall at the cut, the
        # run still quiesces, and every lost message is accounted
        plan = FailurePlan().fail(2, 3)
        net = BatchedNetwork(_weighted_path(6), failures=plan, trace=True)
        stats = net.run(DistributedBFS(0))
        dist, _ = DistributedBFS.results(net)
        assert dist[:3] == [0, 1, 2]
        assert dist[3:] == [None, None, None]
        assert stats.quiescent
        assert stats.dropped > 0
        assert sum(r.dropped for r in net.trace) == stats.dropped == net.dropped
        assert sum(r.delivered for r in net.trace) == stats.messages - stats.dropped

    def test_bfs_reroutes_around_failed_cycle_edge(self):
        # on a cycle the wavefront routes around a severed edge: everyone
        # is still reached, but node 1 now sits a full lap away
        g = nx.cycle_graph(10)
        for _, _, d in g.edges(data=True):
            d["weight"] = 1.0
        clean = BatchedNetwork(g.copy())
        clean_stats = clean.run(DistributedBFS(0))
        plan = FailurePlan().fail(0, 1)
        net = BatchedNetwork(g.copy(), failures=plan)
        stats = net.run(DistributedBFS(0))
        dist, _ = DistributedBFS.results(net)
        clean_dist, _ = DistributedBFS.results(clean)
        assert all(d is not None for d in dist)
        assert dist[1] == 9 and clean_dist[1] == 1
        assert all(dist[v] >= clean_dist[v] for v in range(10))
        assert stats.rounds > clean_stats.rounds

    def test_flood_min_routes_around_failed_edge(self):
        # cycle: cutting one edge forces the minimum the long way round
        g = nx.cycle_graph(12)
        for _, _, d in g.edges(data=True):
            d["weight"] = 1.0
        values = [(v + 1,) for v in range(12)]
        values[6] = (0,)  # unique minimum at node 6
        active = {v: sorted(g.neighbors(v)) for v in g.nodes()}
        clean = BatchedNetwork(g.copy())
        clean_stats = clean.run(FloodMin(values, active))
        plan = FailurePlan().fail(6, 7)
        net = BatchedNetwork(g.copy(), failures=plan)
        stats = net.run(FloodMin(values, active))
        assert FloodMin.results(net) == FloodMin.results(clean) == [(0,)] * 12
        assert stats.rounds > clean_stats.rounds

    def test_asymmetric_failure_is_directional(self):
        plan = FailurePlan().fail(0, 1, symmetric=False)
        assert plan.is_down(1, 0, 1)
        assert not plan.is_down(1, 1, 0)
        sym = FailurePlan().fail(0, 1)
        assert sym.is_down(3, 0, 1) and sym.is_down(3, 1, 0)

    def test_budget_still_enforced_on_failed_edge(self):
        plan = FailurePlan().fail(0, 1)

        class Chatty:
            def setup(self, ctx):
                ctx.state["sent"] = False

            def step(self, ctx, inbox):
                if ctx.node == 0 and not ctx.state["sent"]:
                    ctx.state["sent"] = True
                    return {1: (1, 2, 3, 4, 5)}
                return {}

            def wants_to_continue(self, ctx):
                return False

        net = BatchedNetwork(_weighted_path(3), failures=plan)
        with pytest.raises(SimulationError, match="budget"):
            net.run(Chatty())

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            FailurePlan().fail(0, 1, rounds=[0])
        with pytest.raises(ValueError, match="probability"):
            random_failure_plan(_weighted_path(4), p=1.5, max_rounds=3)

    def test_random_plan_is_seeded(self):
        g = _weighted_path(6)
        a = random_failure_plan(g, p=0.3, max_rounds=10, seed=4)
        b = random_failure_plan(g, p=0.3, max_rounds=10, seed=4)
        c = random_failure_plan(g, p=0.3, max_rounds=10, seed=5)
        assert a.by_round == b.by_round
        assert a.by_round != c.by_round
        stats_a = BatchedNetwork(g, failures=a).run(DistributedBFS(0))
        stats_b = BatchedNetwork(g, failures=b).run(DistributedBFS(0))
        assert stats_a == stats_b and stats_a.dropped == stats_b.dropped

    def test_drop_accounting_is_per_run_and_plan_stays_immutable(self):
        # Regression: the engine used to accumulate a lifetime counter on
        # the plan, so reusing one plan across runs conflated their stats.
        import copy

        plan = FailurePlan().fail(2, 3)
        before = copy.deepcopy(plan)
        net = BatchedNetwork(_weighted_path(6), failures=plan)
        stats1 = net.run(DistributedBFS(0))
        assert stats1.dropped > 0
        assert net.dropped == stats1.dropped
        net.reset_state()
        stats2 = net.run(DistributedBFS(0))
        assert stats2.dropped == stats1.dropped  # reset each run
        assert net.dropped == stats2.dropped
        # The plan is pure configuration: bitwise-unchanged after two runs.
        assert plan == before
        # A second network reusing the same plan sees identical behavior.
        stats3 = BatchedNetwork(_weighted_path(6), failures=plan).run(
            DistributedBFS(0)
        )
        assert stats3 == stats1

    def test_empty_plan_matches_oracle(self):
        g = _weighted_path(10)
        plan = FailurePlan()
        assert plan.empty()
        stats = BatchedNetwork(g, failures=plan).run(DistributedBFS(0))
        assert stats == Network(g).run(DistributedBFS(0))
        assert stats.dropped == 0
