"""Property-based tests (hypothesis) for the core invariants.

Strategies generate arbitrary rooted trees (random parent arrays) and link
sets; the properties are the paper's own claims, checked on whatever the
strategy produces.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.certificates import dual_lower_bound, dual_slacks
from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.core.reverse import COVER_BOUND, reverse_delete
from repro.core.unweighted import unweighted_tap
from repro.core.virtual_graph import build_virtual_edges
from repro.decomp.layering import Layering
from repro.decomp.petals import compute_petals
from repro.decomp.segments import SegmentDecomposition
from repro.shortcuts.subroutines import CoverDetector
from repro.shortcuts.tools import FragmentHierarchy, ShortcutToolkit
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.lca_labels import LcaLabeling
from repro.trees.pathops import TreePathOps
from repro.trees.rooted import RootedTree


@st.composite
def trees(draw, min_n: int = 2, max_n: int = 40):
    n = draw(st.integers(min_n, max_n))
    parent = [-1]
    for v in range(1, n):
        parent.append(draw(st.integers(0, v - 1)))
    return RootedTree(parent, 0)


@st.composite
def tap_instances(draw, max_n: int = 30, max_links: int = 40):
    tree = draw(trees(min_n=2, max_n=max_n))
    k = draw(st.integers(0, max_links))
    links = []
    for _ in range(k):
        u = draw(st.integers(0, tree.n - 1))
        v = draw(st.integers(0, tree.n - 1))
        if u != v:
            w = draw(st.floats(0.5, 100.0, allow_nan=False))
            links.append((u, v, w))
    # guarantee feasibility
    for leaf in tree.leaves():
        links.append((leaf, tree.root, draw(st.floats(1.0, 200.0))))
    return TAPInstance.from_links(tree, links)


@settings(max_examples=60, deadline=None)
@given(trees())
def test_lca_agrees_with_labels(tree):
    lab = LcaLabeling(tree)
    for u in range(0, tree.n, max(1, tree.n // 7)):
        for v in range(0, tree.n, max(1, tree.n // 5)):
            assert lab.lca(u, v) == tree.lca(u, v)


@settings(max_examples=60, deadline=None)
@given(trees())
def test_layering_properties(tree):
    lay = Layering(tree)
    # monotone along root paths, partition into paths, log bound
    for v in tree.tree_edges():
        p = tree.parent[v]
        if p != tree.root:
            assert lay.layer[p] >= lay.layer[v]
    assert sorted(e for path in lay.paths for e in path.edges) == sorted(
        tree.tree_edges()
    )
    leaves = max(2, len(tree.leaves()))
    assert lay.num_layers <= math.log2(leaves) + 2


@settings(max_examples=40, deadline=None)
@given(tap_instances())
def test_petals_cover_same_layer_neighbours(inst):
    # Claim 4.9 restricted to same-layer neighbours (the case the
    # reverse-delete phase uses).
    tree = inst.tree
    lay = inst.layering
    x = [e.pair for e in inst.edges]
    petals = compute_petals(inst.ops, lay, x, tree.tree_edges())
    for idx, (dec, anc) in enumerate(x):
        covered = list(tree.chain(dec, anc))
        for t in covered:
            for t2 in covered:
                if lay.layer[t2] < lay.layer[t]:
                    continue
                assert any(
                    tree.covers_vertical(*x[pi], t2)
                    for pi in petals.petals_of(t)
                )


@settings(max_examples=30, deadline=None)
@given(tap_instances(), st.sampled_from(["basic", "improved"]), st.booleans())
def test_full_algorithm_invariants(inst, variant, segmented):
    eps = 0.5
    fwd = forward_phase(inst, eps=eps)
    rev = reverse_delete(inst, fwd, variant=variant, segmented=segmented, validate=True)
    # Lemma 3.1's chain: w(B) <= c (1+eps) sum(y)
    c = COVER_BOUND[variant]
    w_b = inst.weight_of(rev.b)
    assert w_b <= c * (1 + eps) * sum(fwd.y) + 1e-6
    # cover complete
    counts = inst.ops.coverage_counts(inst.edges[e].pair for e in rev.b)
    assert all(counts[t] > 0 for t in inst.tree.tree_edges())
    # dual feasibility
    for e, ratio in zip(inst.edges, dual_slacks(inst, fwd.y)):
        if e.weight > 0:
            assert ratio <= (1 + eps) * (1 + 1e-9)
    # the dual bound is consistent
    assert dual_lower_bound(fwd.y, eps) <= sum(fwd.y) + 1e-9


@settings(max_examples=40, deadline=None)
@given(tap_instances())
def test_virtual_edges_vertical_and_equivalent(inst):
    tree = inst.tree
    for e in inst.edges:
        assert tree.is_strict_ancestor(e.anc, e.dec)


@settings(max_examples=40, deadline=None)
@given(trees(max_n=35))
def test_segments_partition_edges(tree):
    dec = SegmentDecomposition(tree)
    for v in tree.tree_edges():
        assert dec.seg_of_edge[v] >= 0
        seg = dec.segments[dec.seg_of_edge[v]]
        assert tree.is_ancestor(seg.r, v)


@settings(max_examples=40, deadline=None)
@given(trees(max_n=35))
def test_hld_light_bound(tree):
    for mode in ("max-child", "majority"):
        hld = HeavyLightDecomposition(tree, mode=mode)
        for v in range(tree.n):
            assert hld.num_light_on_root_path(v) <= math.log2(max(2, tree.n)) + 1


@settings(max_examples=30, deadline=None)
@given(trees(max_n=30), st.randoms(use_true_random=False))
def test_xor_detector_one_sided(tree, rnd):
    tk = ShortcutToolkit(FragmentHierarchy(tree))
    det = CoverDetector(tk, seed=7)
    edges = []
    for _ in range(10):
        u = rnd.randrange(tree.n)
        v = rnd.randrange(tree.n)
        if u != v:
            edges.append((u, v))
    got = det.covered_edges(edges)
    truth = set()
    for u, v in edges:
        truth.update(tree.path_edges(u, v))
    for v in tree.tree_edges():
        if v not in truth:
            assert not got[v]  # deterministic direction of Lemma 5.4


@settings(max_examples=30, deadline=None)
@given(tap_instances(max_n=25, max_links=25))
def test_unweighted_two_approx_certificate(inst):
    pairs = [(e.dec, e.anc) for e in inst.edges]
    res = unweighted_tap(inst.tree, pairs)
    assert res.certified_virtual_ratio <= 2.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(trees(max_n=40), st.integers(0, 10**6))
def test_pathops_sum_consistency(tree, seed):
    import random as _random

    rng = _random.Random(seed)
    values = [0.0] + [rng.uniform(0, 10) for _ in range(tree.n - 1)]
    values[tree.root] = 0.0
    ops = TreePathOps(tree)
    cum = ops.ancestor_sums(values)
    for v in range(tree.n):
        total = sum(values[x] for x in tree.chain(v, tree.root))
        assert abs(cum[v] - total) < 1e-6
