"""The incremental re-solve path: sparse deltas must be bit-identical.

Mirrors the session-reuse differential suite
(``tests/test_runtime_session.py``): for every registered compute backend,
a :meth:`~repro.runtime.session.SolverSession.solve` driven by a sparse
``weights_delta`` must be **bit-identical** to a fresh one-shot call on a
graph rebuilt with the same patched weights — across swap-forcing diffs,
non-swap diffs, fallback-forcing configurations, and tie-heavy integer
weights.  Also pins the correctness-hardening satellites: the weight
fingerprint canonicalizes signed zero and rejects NaN, and a reweight
mapping naming one edge under both key orders with different values is an
explicit :class:`~repro.exceptions.GraphFormatError`.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.tecss import approximate_two_ecss
from repro.exceptions import GraphFormatError
from repro.fast import HAVE_NUMPY
from repro.graphs import cycle_with_chords
from repro.graphs.families import make_family_instance
from repro.runtime import GraphHandle, SolverPlan, SolverSession
from repro.runtime.delta import DeltaFallback, maintain_mst

COMPUTE_BACKENDS = ["reference"] + (["fast"] if HAVE_NUMPY else [])


def _assert_same_result(a, b):
    """Field-by-field bit-identity of two TwoEcssResult objects."""
    assert a.edges == b.edges
    assert a.weight == b.weight
    assert a.mst_edges == b.mst_edges
    assert a.mst_weight == b.mst_weight
    assert a.diameter == b.diameter
    assert a.n == b.n
    assert a.guarantee == b.guarantee
    ta, tb = a.augmentation, b.augmentation
    assert ta.links == tb.links
    assert ta.weight == tb.weight
    assert ta.virtual_eids == tb.virtual_eids
    assert ta.virtual_weight == tb.virtual_weight
    assert ta.dual_bound == tb.dual_bound
    assert ta.guarantee == tb.guarantee
    assert ta.iterations_per_epoch == tb.iterations_per_epoch
    assert ta.num_layers == tb.num_layers
    assert ta.max_coverage_of_dual_edges == tb.max_coverage_of_dual_edges


def _sparse_diff(graph, seed, k, lo=0.1, hi=12.0):
    """``k`` seeded weight changes as an edge-label mapping."""
    rng = random.Random(seed)
    edges = list(graph.edges())
    chosen = rng.sample(range(len(edges)), min(k, len(edges)))
    return {edges[i]: round(rng.uniform(lo, hi), 3) for i in chosen}


def _patched(graph, changed):
    """A fresh copy of ``graph`` with the diff applied (same edge order)."""
    out = graph.copy()
    for (u, v), w in changed.items():
        out[u][v]["weight"] = w
    return out


def _stable_mst_edges(graph):
    """The stable-Kruskal MST edge set, via networkx's stable sort."""
    import networkx as nx

    mst = nx.minimum_spanning_tree(graph, weight="weight")
    return sorted(tuple(sorted(e)) for e in mst.edges())


# ---------------------------------------------------------------------------
# swap-edge MST maintenance (unit level)
# ---------------------------------------------------------------------------


class TestMaintainMst:
    def test_fuzz_matches_stable_kruskal(self):
        """Maintained tree == stable Kruskal of the patched graph, 30 trials."""
        for trial in range(30):
            graph = cycle_with_chords(40, 14, seed=trial)
            handle = GraphHandle.from_graph(graph)
            plan = SolverPlan(handle)
            changed = _sparse_diff(graph, 1000 + trial, k=1 + trial % 5)
            new = handle.reweight_delta(changed)
            outcome = maintain_mst(new, plan.tree, plan.mst_edges)
            assert outcome.mst_edges == _stable_mst_edges(_patched(graph, changed))
            assert len(outcome.swaps) <= len(new.delta_changes)

    def test_tie_heavy_integer_weights(self):
        """Integer weights with many ties: the lex tie-break must hold."""
        for trial in range(10):
            rng = random.Random(trial)
            graph = cycle_with_chords(30, 12, seed=trial)
            for _, _, data in graph.edges(data=True):
                data["weight"] = rng.randint(1, 4)
            handle = GraphHandle.from_graph(graph)
            plan = SolverPlan(handle)
            changed = {
                e: rng.randint(1, 4)
                for e in rng.sample(list(graph.edges()), 4)
            }
            new = handle.reweight_delta(changed)
            if new is handle:
                continue
            outcome = maintain_mst(new, plan.tree, plan.mst_edges)
            assert outcome.mst_edges == _stable_mst_edges(_patched(graph, changed))

    def test_swap_budget_raises_fallback(self):
        """A cascade past ``max_swaps`` aborts with :class:`DeltaFallback`."""
        graph = cycle_with_chords(40, 14, seed=7)
        handle = GraphHandle.from_graph(graph)
        plan = SolverPlan(handle)
        # Make several chords much cheaper than the tree path they span:
        # each must enter the tree, forcing one swap per change.
        changed = {e: 0.001 for e in list(graph.edges())[-6:]}
        new = handle.reweight_delta(changed)
        with pytest.raises(DeltaFallback):
            maintain_mst(new, plan.tree, plan.mst_edges, max_swaps=0)


# ---------------------------------------------------------------------------
# GraphHandle.reweight_delta + fingerprint hardening
# ---------------------------------------------------------------------------


class TestReweightDelta:
    def setup_method(self):
        self.graph = cycle_with_chords(24, 8, seed=1)
        self.handle = GraphHandle.from_graph(self.graph)

    def test_noop_delta_returns_self(self):
        (u, v) = next(iter(self.graph.edges()))
        w = self.graph[u][v]["weight"]
        assert self.handle.reweight_delta({(u, v): w}) is self.handle

    def test_records_base_and_changes(self):
        changed = _sparse_diff(self.graph, 5, k=3)
        new = self.handle.reweight_delta(changed)
        assert new.delta_base is self.handle
        assert len(new.delta_changes) == 3
        for i, w in new.delta_changes.items():
            assert new.weights[i] == w

    def test_derived_key_matches_full_recompute(self):
        """The O(k) chained fingerprint == the O(m) from-scratch one."""
        changed = _sparse_diff(self.graph, 6, k=4)
        new = self.handle.reweight_delta(changed)
        fresh = GraphHandle.from_graph(_patched(self.graph, changed))
        assert new.weights_key == fresh.weights_key

    def test_unknown_edge_raises(self):
        with pytest.raises(GraphFormatError, match="delta"):
            self.handle.reweight_delta({(0, 999): 1.0})

    def test_reverse_key_is_same_edge(self):
        (u, v) = next(iter(self.graph.edges()))
        a = self.handle.reweight_delta({(u, v): 3.25})
        b = self.handle.reweight_delta({(v, u): 3.25})
        assert a.weights == b.weights
        assert a.weights_key == b.weights_key

    def test_both_key_orders_conflict_raises(self):
        """Satellite: (u,v) and (v,u) with different values is an error."""
        (u, v) = next(iter(self.graph.edges()))
        with pytest.raises(GraphFormatError, match="both key orders"):
            self.handle.reweight({(u, v): 1.0, (v, u): 2.0})
        # ... and GraphFormatError is a ValueError, so callers guarding
        # with a generic ``except ValueError`` still catch it.
        assert issubclass(GraphFormatError, ValueError)

    def test_both_key_orders_same_value_ok(self):
        (u, v) = next(iter(self.graph.edges()))
        new = self.handle.reweight_delta({(u, v): 4.5, (v, u): 4.5})
        assert 4.5 in new.weights
        with pytest.raises(GraphFormatError, match="both key orders"):
            self.handle.reweight_delta({(u, v): 1.0, (v, u): 2.0})

    def test_nan_rejected(self):
        """Satellite: NaN weights are rejected everywhere, never hashed."""
        (u, v) = next(iter(self.graph.edges()))
        with pytest.raises(GraphFormatError):
            self.handle.reweight_delta({(u, v): math.nan})
        with pytest.raises(GraphFormatError):
            self.handle.reweight({(u, v): math.nan})
        bad = self.graph.copy()
        bad[u][v]["weight"] = math.nan
        with pytest.raises(GraphFormatError):
            GraphHandle.from_graph(bad)

    def test_signed_zero_canonicalized(self):
        """Satellite: -0.0 == 0.0 must fingerprint identically."""
        (u, v) = next(iter(self.graph.edges()))
        pos = self.handle.reweight_delta({(u, v): 0.0})
        neg = self.handle.reweight_delta({(u, v): -0.0})
        assert pos.weights_key == neg.weights_key
        # Full-column reweights agree with the delta-derived keys.
        col = list(self.handle.weights)
        col[list(pos.delta_changes)[0]] = -0.0
        assert GraphHandle.from_graph(
            _patched(self.graph, {(u, v): -0.0})
        ).weights_key == pos.weights_key


# ---------------------------------------------------------------------------
# end-to-end differential: session delta solve vs fresh one-shot
# ---------------------------------------------------------------------------


class TestDeltaDifferential:
    @pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
    def test_fuzz_bit_identical(self, backend):
        """Seeded fuzz: delta solves == one-shot solves, every backend."""
        for trial in range(8):
            graph = cycle_with_chords(36, 12, seed=trial)
            session = SolverSession(graph, backend=backend)
            session.solve(eps=0.5)  # warm the base plan
            for tick in range(3):
                changed = _sparse_diff(graph, 100 * trial + tick, k=2 + tick)
                got = session.solve(eps=0.5, weights_delta=changed)
                want = approximate_two_ecss(
                    _patched(graph, changed), eps=0.5, backend=backend
                )
                _assert_same_result(got, want)
            assert session.stats()["delta_requests"] == 3 * 1

    @pytest.mark.parametrize("backend", COMPUTE_BACKENDS)
    def test_swap_and_nonswap_paths(self, backend):
        """Force both maintenance outcomes and check counters + identity."""
        graph = make_family_instance("grid", 49, seed=2)
        session = SolverSession(graph, backend=backend)
        session.solve(eps=0.5)
        edges = list(graph.edges())
        # Non-tree edge made very cheap: must swap into the tree.
        swap_diff = {edges[-1]: 0.0001}
        got = session.solve(eps=0.5, weights_delta=swap_diff)
        _assert_same_result(
            got, approximate_two_ecss(
                _patched(graph, swap_diff), eps=0.5, backend=backend
            ),
        )
        # Tiny decrease of an already-cheap edge: tree unchanged.
        reuse_diff = {edges[0]: graph[edges[0][0]][edges[0][1]]["weight"] * 0.999}
        got = session.solve(eps=0.5, weights_delta=reuse_diff)
        _assert_same_result(
            got, approximate_two_ecss(
                _patched(graph, reuse_diff), eps=0.5, backend=backend
            ),
        )
        stats = session.stats()
        assert stats["delta_requests"] == 2
        assert stats["delta_tree_swaps"] >= 1

    def test_fallback_path_bit_identical(self):
        """A too-large diff falls back to a plain rebuild — same result."""
        graph = cycle_with_chords(36, 12, seed=3)
        session = SolverSession(graph, delta_max_fraction=0.0001)
        session.solve(eps=0.5)
        changed = _sparse_diff(graph, 9, k=5)
        got = session.solve(eps=0.5, weights_delta=changed)
        want = approximate_two_ecss(_patched(graph, changed), eps=0.5)
        _assert_same_result(got, want)
        assert session.stats()["delta_fallbacks"] == 1

    def test_chained_deltas_are_base_relative(self):
        """A second delta replaces the first — diffs are against the base."""
        graph = cycle_with_chords(30, 10, seed=4)
        session = SolverSession(graph)
        edges = list(graph.edges())
        first = {edges[0]: 7.5}
        second = {edges[1]: 2.5}
        session.solve(eps=0.5, weights_delta=first)
        got = session.solve(eps=0.5, weights_delta=second)
        # One-shot: only the SECOND change applied (first reverted to base).
        want = approximate_two_ecss(_patched(graph, second), eps=0.5)
        _assert_same_result(got, want)

    def test_noop_delta_hits_base_plan(self):
        graph = cycle_with_chords(30, 10, seed=5)
        session = SolverSession(graph)
        (u, v) = next(iter(graph.edges()))
        base = session.plan()
        same = session.plan(weights_delta={(u, v): graph[u][v]["weight"]})
        assert same is base

    def test_weights_and_delta_are_exclusive(self):
        graph = cycle_with_chords(30, 10, seed=6)
        session = SolverSession(graph)
        (u, v) = next(iter(graph.edges()))
        with pytest.raises(ValueError, match="weights"):
            session.solve(
                weights=[1.0] * graph.number_of_edges(),
                weights_delta={(u, v): 1.0},
            )

    def test_sim_engine_delta(self):
        """Delta plans feed the sim engine identically to a fresh solve."""
        from repro.dist.pipeline import distributed_two_ecss

        graph = cycle_with_chords(24, 8, seed=7)
        session = SolverSession(graph, engine="sim")
        changed = _sparse_diff(graph, 11, k=2)
        got = session.solve(eps=0.5, weights_delta=changed)
        want = distributed_two_ecss(_patched(graph, changed), eps=0.5)
        assert got.result.edges == want.result.edges
        assert got.result.weight == want.result.weight
        assert got.measured_rounds == want.measured_rounds

    def test_delta_build_times_visible(self):
        """The reused path books ``mst:delta`` time, not ``mst`` time."""
        graph = cycle_with_chords(30, 10, seed=8)
        session = SolverSession(graph)
        session.solve(eps=0.5)
        edges = list(graph.edges())
        reuse = {edges[0]: graph[edges[0][0]][edges[0][1]]["weight"] * 0.999}
        session.solve(eps=0.5, weights_delta=reuse)
        times = session.stats()["build_times_s"]
        assert "mst:delta" in times
        assert any(key.endswith(":delta") and key.startswith("instance")
                   for key in times)


# ---------------------------------------------------------------------------
# plan-level invalidation
# ---------------------------------------------------------------------------


class TestDeltaPlan:
    def test_from_delta_requires_matching_parent(self):
        graph = cycle_with_chords(24, 8, seed=1)
        handle = GraphHandle.from_graph(graph)
        parent = SolverPlan(handle)
        other = handle.reweight_delta(_sparse_diff(graph, 2, k=2))
        stranger = SolverPlan(handle.reweight([1.0] * handle.m))
        with pytest.raises(ValueError, match="base"):
            SolverPlan.from_delta(stranger, other)

    def test_tree_shared_when_unchanged(self):
        """No swap → the parent's tree/instance artifacts are shared."""
        graph = cycle_with_chords(24, 8, seed=2)
        handle = GraphHandle.from_graph(graph)
        parent = SolverPlan(handle)
        parent.instance("fast" if HAVE_NUMPY else "reference")
        edges = list(graph.edges())
        reuse = {edges[0]: graph[edges[0][0]][edges[0][1]]["weight"] * 0.999}
        child = SolverPlan.from_delta(parent, handle.reweight_delta(reuse))
        assert child.delta_info["mode"] == "reused"
        assert child.tree is parent.tree
        assert child.mst_edges is parent.mst_edges
        flavor = "fast" if HAVE_NUMPY else "reference"
        assert child.instance(flavor).layering is parent.instance(flavor).layering

    def test_swap_rebuilds_tree_only(self):
        graph = make_family_instance("grid", 36, seed=3)
        handle = GraphHandle.from_graph(graph)
        parent = SolverPlan(handle)
        mst_set = set(parent.mst_edges)
        chord = next(
            e for e in graph.edges() if tuple(sorted(e)) not in mst_set
        )
        child = SolverPlan.from_delta(
            parent, handle.reweight_delta({chord: 0.0001})
        )
        assert child.delta_info["mode"] == "swapped"
        assert child.tree is not parent.tree
        assert child.mst_edges != parent.mst_edges
        assert child.mst_edges == _stable_mst_edges(
            _patched(graph, {chord: 0.0001})
        )

    def test_spliced_links_match_full_replay(self):
        """Swapped-mode links (parent-list splice) are tuple-for-tuple the
        from-scratch ``nontree_links`` of the patched graph — deletions,
        ordered insertions, and weight patches all at the right ranks."""
        graph = make_family_instance("grid", 36, seed=3)
        handle = GraphHandle.from_graph(graph)
        parent = SolverPlan(handle)
        parent.links  # materialize: from_delta must take the splice path
        mst_set = set(parent.mst_edges)
        chords = [
            e for e in graph.edges() if tuple(sorted(e)) not in mst_set
        ]
        diff = {chords[0]: 0.0001, chords[3]: 0.0002, chords[7]: 3.75}
        child = SolverPlan.from_delta(parent, handle.reweight_delta(diff))
        assert child.delta_info["mode"] == "swapped"
        assert child.delta_info["swaps"] >= 2
        fresh = SolverPlan(GraphHandle.from_graph(_patched(graph, diff)))
        assert child.mst_edges == fresh.mst_edges
        assert child.links == fresh.links
