"""Tests for the reverse-delete phase: Lemmas 3.2/4.18, Claims 4.13-4.17."""

from __future__ import annotations

import random

import pytest

from repro.core.forward import forward_phase
from repro.core.instance import TAPInstance
from repro.core.reverse import COVER_BOUND, reverse_delete

from conftest import random_tap_instance, random_tap_links, random_tree


def solve(inst, variant, segmented, eps=0.3):
    fwd = forward_phase(inst, eps=eps)
    rev = reverse_delete(inst, fwd, variant=variant, segmented=segmented, validate=True)
    return fwd, rev


def coverage_of(inst, eids):
    return inst.ops.coverage_counts(inst.edges[e].pair for e in eids)


@pytest.mark.parametrize("variant", ["basic", "improved"])
@pytest.mark.parametrize("segmented", [True, False])
class TestFinalProperties:
    def test_b_covers_everything(self, variant, segmented):
        inst = random_tap_instance(70, 140, seed=1)
        fwd, rev = solve(inst, variant, segmented)
        counts = coverage_of(inst, rev.b)
        for t in inst.tree.tree_edges():
            assert counts[t] > 0

    def test_cover_bound_on_dual_support(self, variant, segmented):
        # Every tree edge with positive dual covered at most c times.
        inst = random_tap_instance(70, 140, seed=2)
        fwd, rev = solve(inst, variant, segmented)
        counts = coverage_of(inst, rev.b)
        c = COVER_BOUND[variant]
        for t in inst.tree.tree_edges():
            if fwd.y[t] > 0:
                assert counts[t] <= c

    def test_b_subset_of_a(self, variant, segmented):
        inst = random_tap_instance(60, 120, seed=3)
        fwd, rev = solve(inst, variant, segmented)
        assert rev.b <= set(fwd.added)

    def test_improved_no_heavier_than_basic_guarantee(self, variant, segmented):
        # Not a theorem, but the weight must satisfy the Lemma 3.1 chain:
        # w(B) <= c * (1+eps) * sum(y).
        eps = 0.3
        inst = random_tap_instance(60, 120, seed=4)
        fwd, rev = solve(inst, variant, segmented, eps=eps)
        w_b = inst.weight_of(rev.b)
        c = COVER_BOUND[variant]
        assert w_b <= c * (1 + eps) * sum(fwd.y) * (1 + 1e-6)


@pytest.mark.parametrize("shape", ["path", "caterpillar", "uniform", "broom"])
@pytest.mark.parametrize("segment_size", [3, 6, None])
class TestTinySegmentsStress:
    """Tiny segments force the cross-segment global/local MIS interplay."""

    def test_improved_validates(self, shape, segment_size):
        for seed in (1, 2, 3):
            inst = random_tap_instance(
                60, 120, seed=seed, shape=shape, segment_size=segment_size
            )
            solve(inst, "improved", True)  # validate=True raises on violation

    def test_basic_validates(self, shape, segment_size):
        for seed in (1, 2, 3):
            inst = random_tap_instance(
                60, 120, seed=seed, shape=shape, segment_size=segment_size
            )
            solve(inst, "basic", True)


class TestAnchorStructure:
    def _instrumented(self, seed, variant, n=70, segment_size=4):
        inst = random_tap_instance(n, 150, seed=seed, shape="path", segment_size=segment_size)
        fwd, rev = solve(inst, variant, True)
        return inst, fwd, rev

    def test_claim_4_13_anchors_independent_basic(self):
        # In the basic variant all anchors of one epoch are pairwise
        # independent w.r.t. that epoch's X = B + A_k: no X edge covers two.
        for seed in (1, 2, 3, 4):
            inst, fwd, rev = self._instrumented(seed, "basic")
            by_epoch: dict[int, list] = {}
            for a in rev.anchors:
                by_epoch.setdefault(a.epoch, []).append(a)
            for epoch, anchors in by_epoch.items():
                x_eids = rev.x_by_epoch[epoch]
                for i, a in enumerate(anchors):
                    for b in anchors[i + 1 :]:
                        shared = [
                            eid
                            for eid in x_eids
                            if inst.covers(eid, a.t) and inst.covers(eid, b.t)
                        ]
                        assert not shared, (
                            f"anchors {a.t},{b.t} of epoch {epoch} share link(s) "
                            f"{shared} from X"
                        )

    def test_claim_4_15_dependency_structure_improved(self):
        # Dependent anchor pairs in the improved variant: the deeper one is
        # local, the shallower one is global, and both were added in the
        # same epoch and iteration.
        found_dependent = 0
        for seed in range(12):
            inst, fwd, rev = self._instrumented(seed, "improved")
            t = inst.tree
            by_epoch: dict[int, list] = {}
            for a in rev.anchors:
                by_epoch.setdefault(a.epoch, []).append(a)
            for epoch, anchors in by_epoch.items():
                x_eids = rev.x_by_epoch[epoch]
                for i, a in enumerate(anchors):
                    for b in anchors[i + 1 :]:
                        shared = any(
                            inst.covers(eid, a.t) and inst.covers(eid, b.t)
                            for eid in x_eids
                        )
                        if not shared:
                            continue
                        found_dependent += 1
                        deeper, shallower = (
                            (a, b) if t.depth[a.t] > t.depth[b.t] else (b, a)
                        )
                        assert deeper.kind == "local"
                        assert shallower.kind == "global"
                        assert a.iteration == b.iteration
        assert found_dependent > 0, "stress instances should produce dependencies"

    def test_figure_4_cleaning_structure(self):
        # Cleaning removals happen, and each removed petal belongs to a
        # global anchor strictly below the 3-covered edge.
        total = 0
        for seed in range(12):
            inst, fwd, rev = self._instrumented(seed, "improved")
            t = inst.tree
            globals_by_hi: dict[int, list] = {}
            for a in rev.anchors:
                if a.kind == "global":
                    globals_by_hi.setdefault(a.hi, []).append(a)
            for edge_t, removed_eid in rev.cleaning_removals:
                owners = [
                    a
                    for a in globals_by_hi.get(removed_eid, [])
                    if t.is_strict_ancestor(edge_t, a.t)
                ]
                assert owners, "removed petal must belong to a global anchor below"
                total += 1
        assert total > 0, "stress instances should trigger the cleaning phase"


class TestDeterminism:
    def test_same_seed_same_output(self):
        for variant in ("basic", "improved"):
            inst1 = random_tap_instance(50, 100, seed=9)
            inst2 = random_tap_instance(50, 100, seed=9)
            _, rev1 = solve(inst1, variant, True)
            _, rev2 = solve(inst2, variant, True)
            assert rev1.b == rev2.b
