"""Fuzz: the full pipeline vs brute-force optima on hundreds of tiny instances.

Every instance runs the complete chain (virtual graph, forward, improved
reverse-delete with validation, certificates) and is compared against the
exhaustive optimum — the strongest end-to-end correctness check we have.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.baselines.exact_milp import brute_force_tap, brute_force_two_ecss
from repro.core.tap import approximate_tap
from repro.core.tecss import approximate_two_ecss
from repro.core.unweighted import unweighted_tap
from repro.exceptions import NotTwoEdgeConnectedError
from repro.trees.rooted import RootedTree


def tiny_instance(seed: int):
    rng = random.Random(seed)
    n = rng.randint(4, 9)
    parent = [-1] + [rng.randrange(v) for v in range(1, n)]
    tree = RootedTree(parent, 0)
    links = []
    count = rng.randint(2, 8)
    for _ in range(count):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            links.append((u, v, round(rng.uniform(1, 20), 2)))
    for leaf in tree.leaves():
        links.append((leaf, 0, round(rng.uniform(5, 40), 2)))
    return tree, links[:14]


@pytest.mark.parametrize("batch", range(8))
def test_tap_fuzz_vs_brute_force(batch):
    eps = 0.5
    for i in range(12):
        seed = batch * 1000 + i
        tree, links = tiny_instance(seed)
        try:
            opt = brute_force_tap(tree, links)
        except NotTwoEdgeConnectedError:
            continue
        for variant, c in (("improved", 2), ("basic", 4)):
            for segmented in (True, False):
                res = approximate_tap(
                    tree, links, eps=eps, variant=variant, segmented=segmented
                )
                bound = (2 * c + eps) * opt.weight + 1e-6
                assert res.weight <= bound, (
                    f"seed {seed} {variant} segmented={segmented}: "
                    f"{res.weight} > {bound}"
                )
                # the dual bound is a true lower bound for OPT on G'
                assert res.dual_bound <= 2 * opt.weight + 1e-6


@pytest.mark.parametrize("batch", range(4))
def test_tecss_fuzz_vs_brute_force(batch):
    for i in range(6):
        seed = batch * 500 + i
        rng = random.Random(seed)
        n = rng.randint(4, 7)
        g = nx.cycle_graph(n)
        extra = rng.randint(1, 3)
        for _ in range(extra):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                g.add_edge(u, v)
        for u, v in g.edges():
            g[u][v]["weight"] = round(rng.uniform(1, 20), 2)
        if g.number_of_edges() > 14:
            continue
        opt = brute_force_two_ecss(g)
        res = approximate_two_ecss(g, eps=0.5)
        assert res.weight <= 5.5 * opt.weight + 1e-6
        assert res.certified_lower_bound <= opt.weight + 1e-6


@pytest.mark.parametrize("batch", range(4))
def test_unweighted_fuzz(batch):
    for i in range(10):
        seed = batch * 300 + i
        tree, links = tiny_instance(seed)
        pairs = [(u, v) for u, v, _ in links]
        try:
            opt = brute_force_tap(tree, [(u, v, 1.0) for u, v in pairs])
        except NotTwoEdgeConnectedError:
            continue
        res = unweighted_tap(tree, pairs)
        assert res.size <= 4 * opt.weight + 1e-9
        assert res.certified_virtual_ratio <= 2 + 1e-9
