"""Tests for certificates (Lemma 3.1) and the round-cost model."""

from __future__ import annotations

import math

import pytest

from repro.core import certificates as cert
from repro.core.forward import forward_phase
from repro.core.reverse import reverse_delete
from repro.core.rounds import PrimitiveLog, RoundCostModel, log_star
from repro.exceptions import InvariantViolation

from conftest import random_tap_instance


class TestCertificates:
    def setup_method(self):
        self.inst = random_tap_instance(50, 100, seed=1)
        self.fwd = forward_phase(self.inst, eps=0.2)
        self.rev = reverse_delete(self.inst, self.fwd, validate=False)

    def test_valid_run_passes_all(self):
        cert.validate_dual_feasibility(self.inst, self.fwd.y, 0.2)
        cert.validate_tightness(self.inst, self.fwd.y, self.rev.b)
        cert.validate_cover(self.inst, self.rev.b)
        worst = cert.validate_coverage_bound(self.inst, self.fwd.y, self.rev.b, 2)
        assert 1 <= worst <= 2

    def test_dual_feasibility_detects_violation(self):
        y = list(self.fwd.y)
        # pump one dual variable far beyond any constraint
        t = next(iter(self.inst.tree.tree_edges()))
        y[t] += 1e9
        with pytest.raises(InvariantViolation):
            cert.validate_dual_feasibility(self.inst, y, 0.2)

    def test_tightness_detects_nontight(self):
        y = [0.0] * self.inst.tree.n
        with pytest.raises(InvariantViolation):
            cert.validate_tightness(self.inst, y, self.rev.b)

    def test_cover_detects_hole(self):
        with pytest.raises(InvariantViolation):
            cert.validate_cover(self.inst, [])

    def test_coverage_bound_detects_excess(self):
        with pytest.raises(InvariantViolation):
            # c=0 makes any covered positive-dual edge an excess
            cert.validate_coverage_bound(self.inst, self.fwd.y, self.rev.b, 0)

    def test_lemma_3_1_chain(self):
        # w(B) <= c (1+eps') sum(y) and dual bound is sum(y)/(1+eps').
        eps_p = 0.2
        w_b = self.inst.weight_of(self.rev.b)
        total_y = sum(self.fwd.y)
        assert w_b <= 2 * (1 + eps_p) * total_y * (1 + 1e-9)
        lb = cert.dual_lower_bound(self.fwd.y, eps_p)
        assert lb == pytest.approx(total_y / 1.2)
        assert cert.certified_ratio(w_b, lb) <= 2 * (1 + eps_p) ** 2 * (1 + 1e-9)

    def test_certified_ratio_degenerate(self):
        assert cert.certified_ratio(0.0, 0.0) == 1.0
        assert cert.certified_ratio(5.0, 0.0) == float("inf")


class TestRoundModel:
    def test_log_star(self):
        assert log_star(2) == 1
        assert log_star(16) == 3
        assert log_star(2**16) == 4
        assert log_star(10**9) >= 4

    def test_costs_positive_and_monotone(self):
        small = RoundCostModel(100, 10)
        large = RoundCostModel(10000, 10)
        for prim in ("mst", "aggregate", "petals", "segment_scan", "broadcast",
                     "layering_layer", "global_mis_gather", "lca_labels",
                     "segments_build"):
            assert small.cost_of(prim) > 0
            assert large.cost_of(prim) >= small.cost_of(prim)

    def test_unknown_primitive(self):
        with pytest.raises(KeyError):
            RoundCostModel(100, 10).cost_of("warp_drive")

    def test_total_and_breakdown(self):
        model = RoundCostModel(400, 12)
        log = PrimitiveLog()
        log.record("aggregate", 5)
        log.record("broadcast", 2)
        total = model.total_rounds(log)
        assert total == pytest.approx(5 * model.cost_of("aggregate") + 2 * 12)
        bd = model.breakdown(log)
        assert bd["TOTAL"] == pytest.approx(total)

    def test_theorem_bound_shape(self):
        model = RoundCostModel(1000, 20)
        assert model.theorem_1_1_bound(0.5) == pytest.approx(
            (20 + model.sqrt_n) * math.log2(1000) ** 2 / 0.5
        )
        assert model.lower_bound() < model.theorem_1_1_bound(0.5)

    def test_merge_logs(self):
        a, b = PrimitiveLog(), PrimitiveLog()
        a.record("aggregate", 2)
        b.record("aggregate", 3)
        b.record("broadcast")
        a.merge(b)
        assert a["aggregate"] == 5
        assert a["broadcast"] == 1
