"""Tests for the layering decomposition (paper Sections 3.2, 4.3).

Verifies Claim 4.7 (O(log n) layers), Claim 4.8 (a vertical edge meets at
most one path per layer), and the structural properties the petal machinery
relies on.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.decomp.layering import Layering
from repro.trees.rooted import RootedTree

from conftest import TREE_SHAPES, random_tree, random_vertical_edges


def brute_force_layering(tree: RootedTree) -> list[int]:
    """Reference implementation: literal repeated contraction."""
    layer = [0] * tree.n
    alive = set(tree.tree_edges())
    current = 0
    while alive:
        current += 1
        children = {v: 0 for v in range(tree.n)}
        for e in alive:
            children[tree.parent[e]] += 1
        leaves = [e for e in alive if children[e] == 0]
        removed = set()
        for leaf in leaves:
            x = leaf
            while True:
                removed.add(x)
                u = tree.parent[x]
                if u == tree.root or children[u] >= 2 or u not in alive:
                    break
                x = u
        for e in removed:
            layer[e] = current
        alive -= removed
    return layer


class TestLayerAssignment:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_matches_brute_force(self, shape):
        t = random_tree(70, seed=1, shape=shape)
        lay = Layering(t)
        assert lay.layer == brute_force_layering(t)

    def test_path_tree_single_layer(self):
        t = random_tree(20, shape="path")
        lay = Layering(t)
        assert lay.num_layers == 1
        assert all(lay.layer[v] == 1 for v in t.tree_edges())
        assert len(lay.paths) == 1
        assert lay.paths[0].leaf == 19
        assert lay.paths[0].top == 0

    def test_star_single_layer(self):
        t = random_tree(10, shape="star")
        lay = Layering(t)
        assert lay.num_layers == 1
        assert len(lay.paths) == 9

    def test_binary_tree_layer_count(self):
        # A complete binary tree of depth d has exactly d layers.
        parent = [-1]
        for v in range(1, 2**5 - 1):
            parent.append((v - 1) // 2)
        t = RootedTree(parent, 0)
        lay = Layering(t)
        assert lay.num_layers == 4

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_log_layer_bound(self, shape):
        # Claim 4.7: O(log n) layers; the contraction halves leaves, so the
        # count is at most log2(#leaves) + 2.
        t = random_tree(600, seed=2, shape=shape)
        lay = Layering(t)
        leaves = len(t.leaves())
        assert lay.num_layers <= math.log2(max(2, leaves)) + 2

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_monotone_along_root_paths(self, shape):
        # Along any leaf-to-root chain the layer number never decreases.
        t = random_tree(90, seed=3, shape=shape)
        lay = Layering(t)
        for v in t.tree_edges():
            p = t.parent[v]
            if p != t.root:
                assert lay.layer[p] >= lay.layer[v]


class TestPaths:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_paths_partition_edges(self, shape):
        t = random_tree(85, seed=4, shape=shape)
        lay = Layering(t)
        seen: list[int] = []
        for p in lay.paths:
            seen.extend(p.edges)
        assert sorted(seen) == sorted(t.tree_edges())

    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_path_structure(self, shape):
        t = random_tree(85, seed=5, shape=shape)
        lay = Layering(t)
        for p in lay.paths:
            # edges form a bottom-up vertical chain starting at the leaf
            assert p.edges[0] == p.leaf
            for a, b in zip(p.edges, p.edges[1:]):
                assert t.parent[a] == b
            assert t.parent[p.edges[-1]] == p.top
            assert all(lay.layer[e] == p.layer for e in p.edges)
            assert all(lay.path_id[e] == p.pid for e in p.edges)

    def test_path_of_and_leaf_of(self):
        t = random_tree(50, seed=6)
        lay = Layering(t)
        for v in t.tree_edges():
            p = lay.path_of(v)
            assert v in p.edges
            assert lay.leaf_of(v) == p.leaf


class TestClaim48:
    @pytest.mark.parametrize("shape", TREE_SHAPES)
    def test_vertical_edge_meets_one_path_per_layer(self, shape):
        # Claim 4.8: the tree edges covered by a vertical edge intersect at
        # most one path in each layer.
        t = random_tree(80, seed=7, shape=shape)
        lay = Layering(t)
        for dec, anc in random_vertical_edges(t, 150, seed=8):
            per_layer_paths: dict[int, set[int]] = {}
            for e in t.chain(dec, anc):
                per_layer_paths.setdefault(lay.layer[e], set()).add(lay.path_id[e])
            for paths in per_layer_paths.values():
                assert len(paths) == 1


class TestNearestInLayer:
    def test_nearest_in_layer_matches_walk(self):
        t = random_tree(60, seed=9)
        lay = Layering(t)
        for i in range(1, lay.num_layers + 1):
            nla = lay.nearest_in_layer(i)
            for v in range(t.n):
                expected = -1
                x = v
                while x != t.root:
                    if lay.layer[x] == i:
                        expected = x
                        break
                    x = t.parent[x]
                assert nla[v] == expected

    def test_deepest_covered_in_layer(self):
        t = random_tree(60, seed=10)
        lay = Layering(t)
        rng = random.Random(11)
        for dec, anc in random_vertical_edges(t, 100, seed=12):
            for i in range(1, lay.num_layers + 1):
                got = lay.deepest_covered_in_layer(i, dec, anc)
                in_layer = [e for e in t.chain(dec, anc) if lay.layer[e] == i]
                expected = max(in_layer, key=lambda e: t.depth[e], default=-1)
                assert got == expected
