"""Run the typed-core mypy gate, skipping gracefully where mypy is absent.

The container images used for local development do not all ship mypy, and
the repo's no-new-dependencies rule forbids installing it ad hoc — so this
wrapper exits 0 with a skip notice when the import fails.  CI installs
mypy explicitly and runs this same entry point, so the gate is enforced
where it matters; locally the dependency-free ``typed-def`` lint rule
(`python -m tools.lint`) shadows the annotation-presence requirement.

    python tools/run_mypy.py          # uses mypy.ini at the repo root
"""

from __future__ import annotations

import os
import subprocess
import sys


def main() -> int:
    """Invoke ``mypy --config-file mypy.ini``; 0 on pass or on skip."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        print(
            "run_mypy: mypy is not installed here - skipping the typed-core "
            "gate (CI enforces it; `python -m tools.lint` covers the "
            "annotation-presence subset locally)"
        )
        return 0
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=root,
    )
    return proc.returncode


if __name__ == "__main__":
    raise SystemExit(main())
