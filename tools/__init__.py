"""Repo tooling: the docs gate (:mod:`tools.check_docs`) and the
invariant-aware static-analysis suite (:mod:`tools.lint`)."""
