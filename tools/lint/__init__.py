"""repro.lint — invariant-aware static analysis for this repository.

A small AST-based framework (no third-party dependencies) enforcing the
invariants the differential test suites can only check *after the fact*:

* **determinism** — no unordered ``set`` iteration on solver paths, no
  unseeded RNG, stable sorts on tie-prone keys, no wall-clock reads in
  solver code;
* **asyncio-safety** — no blocking calls inside ``async def``, no
  fire-and-forget coroutine calls;
* **registry/protocol consistency** — capability strings, serve error
  codes, and CLI subcommands each match their single source of truth;
* **exception contract** — serve request handlers surface structured
  :class:`~repro.serve.protocol.ProtocolError`\\ s only;
* **hygiene** — mutable default arguments, ``assert`` as runtime
  validation;
* **typing** — the typed core (``repro.core``, ``repro.runtime``,
  ``repro.serve.protocol``) carries full signature annotations (the
  dependency-free shadow of the CI ``mypy`` gate).

Run it as ``python -m tools.lint`` (or ``make lint``).  Findings are
suppressed per line with ``# lint: disable=<rule> -- <reason>`` (the
reason is mandatory), per file with ``# lint: disable-file=<rule> --
<reason>``, or grandfathered in ``tools/lint/baseline.json``
(regenerated verbatim by ``--update-baseline``; the committed file must
always equal a clean run's output — ``tests/test_lint_rules.py`` holds
that).  See ``docs/ARCHITECTURE.md`` ("Static analysis layer") for the
rule catalogue and how to add a rule.
"""

from tools.lint.engine import LintResult, lint_paths, load_project
from tools.lint.findings import Finding
from tools.lint.registry import RULES, Rule, register_rule

__all__ = [
    "RULES",
    "Finding",
    "LintResult",
    "Rule",
    "lint_paths",
    "load_project",
    "register_rule",
]
