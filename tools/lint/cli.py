"""Command-line entry point: ``python -m tools.lint [paths...]``.

Exit status 0 when the gate passes (zero unsuppressed, unbaselined
findings and no stale baseline entries), 1 otherwise, 2 on usage errors
— the same convention as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import os
import sys

from tools.lint.engine import (
    BASELINE_PATH,
    lint_paths,
    repo_root,
    write_baseline,
)
from tools.lint.reporters import json_report, rules_report, text_report


def build_parser() -> argparse.ArgumentParser:
    """The CLI surface (kept tiny: paths, format, baseline controls)."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description=(
            "invariant-aware static analysis for this repository "
            "(determinism, asyncio-safety, registry/protocol "
            "consistency, exception contract, hygiene, typed core)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro and tools)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore tools/lint/baseline.json (show the full finding set)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite tools/lint/baseline.json from this run and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the lint gate; see module docstring for exit codes."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        import tools.lint.rules  # noqa: F401  (registers the rule set)

        print(rules_report())
        return 0
    try:
        result = lint_paths(
            paths=args.paths or None,
            use_baseline=not args.no_baseline,
        )
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = os.path.join(repo_root(), BASELINE_PATH)
        write_baseline(target, result.all_raw())
        print(
            f"lint: baseline updated ({len(result.all_raw())} entr(ies) "
            f"-> {BASELINE_PATH})"
        )
        return 0
    if args.format == "json":
        print(json_report(result))
    else:
        print(text_report(result, verbose=args.verbose))
    return 0 if result.ok else 1
