"""The rule-plugin registry: how checks are declared and discovered.

A rule is a subclass of :class:`Rule` decorated with
:func:`register_rule`.  Importing :mod:`tools.lint.rules` registers the
in-tree rule set; external plugins would do the same from their own
modules.  Rules are keyed by ``name`` (the identifier suppression
comments and the baseline use) and grouped by ``family`` for reporting.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Type

from tools.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from tools.lint.engine import ModuleInfo, Project


class Rule:
    """Base class for one lint check.

    Subclasses set ``name`` (kebab-case identifier), ``family`` (one of
    the rule families reported together), ``description`` (one line for
    ``--list-rules`` and the docs), and optionally ``packages`` — dotted
    module-name prefixes the rule is scoped to (``None`` applies it to
    every linted module).  ``exempt_packages`` carves package-level
    holes out of that scope: a module under an exempt prefix is skipped
    even when it matches ``packages`` — the declarative form of "this
    package is allowed to do the thing", preferred over per-line
    suppression comments when the exemption is a design decision (e.g.
    ``repro.obs`` reads the wall clock *by design*; solver packages
    still cannot).  ``check`` yields :class:`Finding` objects; the
    engine handles suppression and baseline filtering.
    """

    name: str = ""
    family: str = ""
    description: str = ""
    packages: tuple[str, ...] | None = None
    exempt_packages: tuple[str, ...] = ()

    def applies_to(self, module: "ModuleInfo") -> bool:
        """Whether this rule runs on the given module (prefix scoping)."""
        dotted = module.dotted
        if any(
            dotted == p or dotted.startswith(p + ".")
            for p in self.exempt_packages
        ):
            return False
        if self.packages is None:
            return True
        return any(
            dotted == p or dotted.startswith(p + ".") for p in self.packages
        )

    def check(
        self, module: "ModuleInfo", project: "Project"
    ) -> Iterator[Finding]:
        """Yield the rule's findings for one module."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def finding(
        self, module: "ModuleInfo", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node of ``module``."""
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


#: name -> rule instance; populated by :func:`register_rule` at import.
RULES: dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule to :data:`RULES` (duplicate = bug)."""
    rule = cls()
    if not rule.name or not rule.family:
        raise ValueError(f"rule {cls.__name__} must set name and family")
    if rule.name in RULES:
        raise ValueError(f"duplicate lint rule name {rule.name!r}")
    RULES[rule.name] = rule
    return cls


def rule_families() -> dict[str, list[Rule]]:
    """Rules grouped by family, names sorted (reporting and docs order)."""
    families: dict[str, list[Rule]] = {}
    for name in sorted(RULES):
        families.setdefault(RULES[name].family, []).append(RULES[name])
    return families
