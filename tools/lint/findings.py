"""The :class:`Finding` record every rule emits and the baseline stores."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative with forward slashes, so findings (and the
    baseline built from them) are stable across machines.  The ordering is
    the report/baseline ordering: by path, then line/column, then rule.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> tuple[str, str, int, str]:
        """The identity used for baseline matching (column excluded, so a
        purely cosmetic reformat of one line does not un-baseline it)."""
        return (self.path, self.rule, self.line, self.message)

    def payload(self) -> dict:
        """JSON-safe dict form (the JSON reporter and the baseline file)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """One text-report line: ``path:line:col: [rule] message``."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
