"""Typed-core rule: the dependency-free shadow of the CI ``mypy`` gate.

``repro.core``, ``repro.runtime`` and ``repro.serve.protocol`` are the
typed core (they ship a ``py.typed`` marker and are checked by ``mypy``
with ``disallow_untyped_defs`` in CI — see ``mypy.ini``).  mypy is not
part of the runtime image, so this rule keeps the *presence* half of the
gate — every signature fully annotated — enforceable everywhere
``make lint`` runs; CI then type-checks the bodies for real.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.findings import Finding
from tools.lint.registry import Rule, register_rule

#: The packages/modules covered by mypy.ini's strict section.
TYPED_CORE = ("repro.core", "repro.runtime", "repro.serve.protocol")


@register_rule
class TypedDefRule(Rule):
    """Every def in the typed core carries full signature annotations."""

    name = "typed-def"
    family = "typing"
    description = (
        "functions in the typed core (repro.core, repro.runtime, "
        "repro.serve.protocol) must annotate every parameter and the "
        "return type (mirrors mypy disallow_untyped_defs)"
    )
    packages = TYPED_CORE

    def check(self, module, project) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = func.args
            missing = [
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
                if a.annotation is None and a.arg not in ("self", "cls")
            ]
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if missing:
                yield self.finding(
                    module, func,
                    f"{func.name}() leaves parameter(s) "
                    f"{', '.join(missing)} unannotated (typed core)",
                )
            if func.returns is None:
                yield self.finding(
                    module, func,
                    f"{func.name}() has no return annotation (typed core)",
                )
