"""Registry/protocol consistency rules: one source of truth per namespace.

Three string namespaces hold this system together: backend *capability*
flags (declared by :class:`repro.runtime.registry.BackendSpec`), serve
*error codes* (declared in :data:`repro.serve.protocol.ERROR_CODES`), and
CLI *subcommands* (declared in ``repro.__main__.COMMANDS``).  A typo'd
query or an undeclared code fails silently at runtime — these rules make
every use site check against its declaration table at lint time, and the
declaration tables check against the documentation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.lint.astutil import call_name, first_str_arg, str_value
from tools.lint.findings import Finding
from tools.lint.registry import Rule, register_rule


def _strings_in(node: ast.AST) -> list[str]:
    """Every string literal inside an expression (set/tuple/list literals)."""
    return [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    ]


def _assigns_name(node: ast.AST, name: str) -> bool:
    """Whether ``node`` is a (possibly annotated) assignment to ``name``."""
    if isinstance(node, ast.Assign):
        return any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        )
    if isinstance(node, ast.AnnAssign):
        return isinstance(node.target, ast.Name) and node.target.id == name
    return False


def _declared_capabilities(project) -> set[str]:
    """Capability strings declared by any ``BackendSpec(...)`` call."""
    def build() -> set[str]:
        declared: set[str] = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node) or ""
                if name.rsplit(".", 1)[-1] != "BackendSpec":
                    continue
                for kw in node.keywords:
                    if kw.arg == "capabilities":
                        declared.update(_strings_in(kw.value))
        return declared
    return project.cached("capabilities", build)


@register_rule
class CapabilityQueryRule(Rule):
    """Every queried capability string must be declared by a BackendSpec."""

    name = "reg-capability"
    family = "consistency"
    description = (
        "a capability string queried via spec.has(...) or `... in "
        "spec.capabilities` is not declared by any registered BackendSpec"
    )

    def check(self, module, project) -> Iterator[Finding]:
        declared = _declared_capabilities(project)
        if not declared:
            return
        for node in ast.walk(module.tree):
            queried: str | None = None
            if isinstance(node, ast.Call):
                name = call_name(node) or ""
                if name.rsplit(".", 1)[-1] == "has" and "." in name:
                    queried = first_str_arg(node)
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                comparator = node.comparators[0]
                if (
                    isinstance(node.ops[0], (ast.In, ast.NotIn))
                    and isinstance(comparator, ast.Attribute)
                    and comparator.attr == "capabilities"
                ):
                    queried = str_value(node.left)
            if queried is not None and queried not in declared:
                yield self.finding(
                    module, node,
                    f"capability {queried!r} is queried but no "
                    "BackendSpec declares it; declare it in "
                    "repro.runtime.registry (or fix the typo — declared: "
                    f"{', '.join(sorted(declared))})",
                )


def _error_code_table(project) -> tuple[dict[str, tuple], str | None]:
    """``ERROR_CODES`` dict literal: code -> (module, key node)."""
    def build():
        table: dict[str, tuple] = {}
        where: str | None = None
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not _assigns_name(node, "ERROR_CODES"):
                    continue
                if isinstance(node.value, ast.Dict):
                    where = module.rel_path
                    for key in node.value.keys:
                        code = str_value(key) if key is not None else None
                        if code is not None:
                            table[code] = (module, key)
        return table, where
    return project.cached("error_codes", build)


def _raised_codes(project) -> dict[str, list[tuple]]:
    """Every error code produced anywhere: code -> [(module, node), ...].

    Collected from ``ProtocolError("<code>", ...)`` constructions,
    ``error_payload("<code>", ...)`` calls, and the declarative
    exception-mapping tables (dict literals named ``_EXCEPTION_CODES``
    whose values are ``("<code>", status)`` tuples).
    """
    def build():
        raised: dict[str, list[tuple]] = {}
        def add(code, module, node):
            raised.setdefault(code, []).append((module, node))
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call):
                    name = (call_name(node) or "").rsplit(".", 1)[-1]
                    if name in ("ProtocolError", "error_payload"):
                        code = first_str_arg(node)
                        if code is not None:
                            add(code, module, node)
                elif _assigns_name(node, "_EXCEPTION_CODES"):
                    if isinstance(node.value, ast.Dict):
                        for value in node.value.values:
                            if isinstance(value, ast.Tuple) and value.elts:
                                code = str_value(value.elts[0])
                                if code is not None:
                                    add(code, module, value.elts[0])
        return raised
    return project.cached("raised_codes", build)


@register_rule
class ErrorCodeRule(Rule):
    """Serve error codes: raised ⊆ declared table ⊆ documented."""

    name = "proto-error-code"
    family = "consistency"
    description = (
        "every error code produced by the serve layer must appear in "
        "protocol.py's ERROR_CODES table, and every table entry must be "
        "documented and actually used"
    )
    packages = ("repro.serve",)

    def check(self, module, project) -> Iterator[Finding]:
        table, table_module = _error_code_table(project)
        if table_module is None:
            return  # no table in scope (e.g. a fixture set without one)
        raised = _raised_codes(project)
        # 1. codes produced in this module but missing from the table.
        for code, sites in raised.items():
            for site_module, node in sites:
                if site_module is not module:
                    continue
                if code not in table:
                    yield self.finding(
                        module, node,
                        f"error code {code!r} is not declared in the "
                        f"ERROR_CODES table ({table_module}); add it "
                        "there (and to the docs) or fix the typo",
                    )
        # 2. table entries: documented, and actually produced somewhere.
        if module.rel_path == table_module:
            docs = project.docs_text()
            for code, (_, key_node) in table.items():
                if f"`{code}`" not in docs and code not in docs:
                    yield self.finding(
                        module, key_node,
                        f"error code {code!r} is declared but not "
                        "documented; add it to the error-code table in "
                        "docs/ARCHITECTURE.md",
                    )
                if code not in raised:
                    yield self.finding(
                        module, key_node,
                        f"error code {code!r} is declared in ERROR_CODES "
                        "but never produced by any serve path; remove "
                        "the stale entry or wire it up",
                    )


_CLI_MENTION = re.compile(r"python -m repro ([a-z][a-z0-9_-]*)")


@register_rule
class CliCommandsRule(Rule):
    """CLI subcommands: COMMANDS table == documented surface."""

    name = "cli-commands"
    family = "consistency"
    description = (
        "subcommands documented as `python -m repro <cmd>` (module "
        "docstring, README, docs) must match the COMMANDS dispatch table"
    )
    packages = ("repro.__main__",)

    def check(self, module, project) -> Iterator[Finding]:
        commands_node = None
        keys: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "COMMANDS"
                for t in node.targets
            ):
                commands_node = node
                if isinstance(node.value, ast.Dict):
                    keys = {
                        code for code in (
                            str_value(k) for k in node.value.keys
                            if k is not None
                        ) if code is not None
                    }
        if commands_node is None:
            return
        docstring = ast.get_docstring(module.tree) or ""
        doc_mentions = set(_CLI_MENTION.findall(docstring))
        for cmd in sorted(doc_mentions - keys):
            yield self.finding(
                module, module.tree.body[0],
                f"module docstring documents `python -m repro {cmd}` but "
                "COMMANDS has no such subcommand",
            )
        for cmd in sorted(keys - doc_mentions):
            yield self.finding(
                module, commands_node,
                f"subcommand {cmd!r} is dispatched by COMMANDS but not "
                "documented in the module docstring usage block",
            )
        for doc_path in sorted(project.docs):
            external = set(_CLI_MENTION.findall(project.docs[doc_path]))
            for cmd in sorted(external - keys):
                yield self.finding(
                    module, commands_node,
                    f"{doc_path} documents `python -m repro {cmd}` but "
                    "COMMANDS has no such subcommand",
                )
