"""Hygiene rules: mutable defaults, runtime ``assert``, suppression syntax."""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import call_name
from tools.lint.findings import Finding
from tools.lint.registry import RULES, Rule, register_rule


@register_rule
class MutableDefaultRule(Rule):
    """Mutable default argument values (shared across calls)."""

    name = "hyg-mutable-default"
    family = "hygiene"
    description = (
        "list/dict/set literals (or constructor calls) as parameter "
        "defaults are evaluated once and shared across every call"
    )

    def check(self, module, project) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {func.name}(); use "
                        "None and construct inside the function (or a "
                        "dataclasses.field factory)",
                    )

    def _mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return (call_name(node) or "") in (
                "list", "dict", "set", "defaultdict", "OrderedDict",
                "collections.defaultdict", "collections.OrderedDict",
            )
        return False


@register_rule
class RuntimeAssertRule(Rule):
    """``assert`` used for runtime validation in non-test source code."""

    name = "hyg-assert"
    family = "hygiene"
    description = (
        "assert statements vanish under `python -O`; raise an explicit "
        "exception for runtime validation in src/ code"
    )

    def check(self, module, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module, node,
                    "assert is stripped under -O; raise ValueError/"
                    "RuntimeError (or the package's structured exception) "
                    "for checks that must hold in production",
                )


@register_rule
class SuppressionSyntaxRule(Rule):
    """Lint-suppression comments must name real rules and give a reason."""

    name = "lint-suppression"
    family = "lint"
    description = (
        "`# lint: disable=<rule> -- reason` comments must reference "
        "registered rules and carry a non-empty reason"
    )

    def check(self, module, project) -> Iterator[Finding]:
        for sup in module.suppressions:
            anchor = _LineAnchor(sup.line)
            if not sup.rules:
                yield self.finding(
                    module, anchor,
                    "malformed lint directive; expected "
                    "`# lint: disable=<rule>[,<rule>] -- <reason>`",
                )
                continue
            for rule_name in sup.rules:
                if rule_name not in RULES:
                    yield self.finding(
                        module, anchor,
                        f"suppression names unknown rule {rule_name!r} "
                        f"(known: {', '.join(sorted(RULES))})",
                    )
            if not (sup.reason or "").strip():
                yield self.finding(
                    module, anchor,
                    "suppression without a reason; append `-- <why this "
                    "is safe>` so the next reader does not have to guess",
                )


class _LineAnchor:
    """A minimal node-alike carrying just a location."""

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0
