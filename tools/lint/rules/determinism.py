"""Determinism rules: the bit-identity contract, enforced statically.

Every backend in this repository must produce byte-identical results for
the same input (``docs/ARCHITECTURE.md``, "bit-identical" gates).  The
classic ways Python silently breaks that are unordered ``set`` iteration,
unseeded RNG, unstable sorts on tie-prone keys, and wall-clock reads
leaking into results.  These rules flag each at the source.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import (
    alias_map,
    call_name,
    canonical_name,
    enclosing_function,
)
from tools.lint.findings import Finding
from tools.lint.registry import Rule, register_rule

#: The solver packages held to the strict ordering rules (the serving and
#: analysis layers consume results; they do not produce them).
SOLVER_PACKAGES = (
    "repro.core",
    "repro.fast",
    "repro.runtime",
    "repro.decomp",
    "repro.trees",
)

#: Callables whose result does not depend on argument iteration order.
ORDER_INSENSITIVE_CALLS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all",
    "set", "frozenset",
})

#: Set-method calls that are order-insensitive regardless of receiver.
ORDER_INSENSITIVE_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "update", "intersection_update", "difference_update",
    "symmetric_difference_update", "issubset", "issuperset", "isdisjoint",
})

#: Callees (by leaf name) that materialise their iterable argument in
#: order.  A set passed straight into one of these bakes hash order into
#: a durable structure — the exact bug class behind the delta.py rebuild
#: fix.  Sets passed to *other* calls are typically membership tables and
#: are left alone (the callee's own iteration is linted in its module).
ORDER_SENSITIVE_SINKS = frozenset({
    "from_edges", "add_edges_from", "add_nodes_from",
    "join", "extend", "fromkeys", "deque",
})


def _set_vars(func: ast.AST) -> set[str]:
    """Names assigned a set-typed value anywhere in the function body.

    Two passes over plain assignments so chains like ``a = set(); b = a``
    resolve regardless of textual order.  Deliberately first-order: an
    attribute or subscript holding a set is out of scope (suppress with a
    reason where one is iterated legitimately).
    """
    names: set[str] = set()
    for _ in range(2):
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            value = getattr(node, "value", None)
            if value is not None and _is_setlike(value, names):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _is_setlike(node: ast.AST, set_vars: set[str]) -> bool:
    """Whether an expression statically looks set-typed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference", "copy",
            )
            and _is_setlike(node.func.value, set_vars)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setlike(node.left, set_vars) or _is_setlike(
            node.right, set_vars
        )
    return False


def _is_keys_call(node: ast.AST) -> bool:
    """``X.keys()`` — flagged alongside sets per the determinism policy.

    Dict iteration is insertion-ordered, but on solver paths insertion
    order is itself rarely a documented invariant; iterate ``sorted(...)``
    or keep an explicit ordered list instead.
    """
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


@register_rule
class SetIterationRule(Rule):
    """Unordered ``set``/``dict.keys`` iteration on solver paths."""

    name = "det-set-iter"
    family = "determinism"
    description = (
        "iteration over a set (or dict.keys()) in solver code without an "
        "order-insensitive consumer such as sorted(...)"
    )
    packages = SOLVER_PACKAGES

    def check(self, module, project) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                continue
            if isinstance(func, ast.Module):
                set_vars: set[str] = set()
            else:
                # Closures read enclosing-scope names, so a nested def
                # inherits every lexical ancestor's set-typed bindings.
                set_vars = _set_vars(func)
                scope = module.parent(func)
                while scope is not None:
                    if isinstance(
                        scope, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        set_vars |= _set_vars(scope)
                    scope = module.parent(scope)
            yield from self._check_scope(module, func, set_vars)

    def _check_scope(self, module, func, set_vars) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(func):
            yield from self._visit(module, node, set_vars, top=func)

    def _visit(self, module, node, set_vars, top) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own scope pass
        if isinstance(node, ast.For):
            yield from self._flag(module, node.iter, set_vars, "for loop")
        elif isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
        ):
            if not self._order_safe_comp(module, node):
                for gen in node.generators:
                    yield from self._flag(
                        module, gen.iter, set_vars, "comprehension"
                    )
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("list", "tuple") and node.args:
                yield from self._flag(
                    module, node.args[0], set_vars, f"{name}() call"
                )
            elif (
                name is not None
                and name.rsplit(".", 1)[-1] in ORDER_SENSITIVE_SINKS
            ):
                for arg in node.args:
                    yield from self._flag(
                        module, arg, set_vars, f"argument to {name}()",
                        direct_only=True,
                    )
        elif isinstance(node, ast.Starred):
            yield from self._flag(module, node.value, set_vars, "* unpacking")
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child, set_vars, top)

    def _order_safe_comp(self, module, comp) -> bool:
        """A comprehension consumed order-insensitively (or set-shaped)."""
        if isinstance(comp, (ast.SetComp, ast.DictComp)):
            return True
        parent = module.parent(comp)
        if isinstance(parent, ast.Call):
            name = call_name(parent)
            if name is not None:
                leaf = name.rsplit(".", 1)[-1]
                if (
                    leaf in ORDER_INSENSITIVE_CALLS
                    or leaf in ORDER_INSENSITIVE_METHODS
                ):
                    return True
        return False

    def _flag(
        self, module, expr, set_vars, context, direct_only: bool = False
    ) -> Iterator[Finding]:
        """Yield a finding when ``expr`` is set-like (and not sorted)."""
        if _is_keys_call(expr):
            yield self.finding(
                module, expr,
                f"dict.keys() iterated in a {context}; iterate "
                "sorted(...) (or document the insertion-order invariant "
                "and suppress with a reason)",
            )
            return
        if direct_only and not isinstance(
            expr, (ast.Name, ast.Set, ast.SetComp)
        ):
            # Arbitrary call arguments are only flagged for plainly
            # set-shaped expressions; nested calls are the callee's
            # concern (keeps argument-position noise near zero).
            if not (isinstance(expr, ast.Call) and call_name(expr) in (
                "set", "frozenset"
            )):
                return
        if _is_setlike(expr, set_vars):
            yield self.finding(
                module, expr,
                f"set iterated in a {context} without sorted(...); "
                "iteration order is not deterministic across runs",
            )


#: ``random`` attributes that are *not* the unseeded module-level RNG.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})
#: ``numpy.random`` attributes that construct explicit (seedable) RNGs.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence", "BitGenerator",
    "PCG64", "Philox", "MT19937",
})


@register_rule
class UnseededRandomRule(Rule):
    """Module-level / unseeded RNG use outside tests."""

    name = "det-unseeded-random"
    family = "determinism"
    description = (
        "use of the global random/numpy.random state, or an RNG "
        "constructed without an explicit seed"
    )

    def check(self, module, project) -> Iterator[Finding]:
        aliases = project.cached(
            f"aliases:{module.rel_path}", lambda: alias_map(module.tree)
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(module, node, aliases)
            elif isinstance(node, ast.Call):
                yield from self._check_seedless(module, node, aliases)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(module, node)

    def _check_attribute(self, module, node, aliases) -> Iterator[Finding]:
        parent = module.parent(node)
        if isinstance(parent, ast.Attribute):
            return  # only the full chain is classified
        name = canonical_name(node, aliases)
        if name is None:
            return
        if name.startswith("random.") and name.count(".") == 1:
            leaf = name.split(".")[1]
            if leaf not in _RANDOM_OK:
                yield self.finding(
                    module, node,
                    f"{name} uses the process-global RNG; construct "
                    "random.Random(seed) and thread it explicitly",
                )
        elif name.startswith("numpy.random."):
            leaf = name.rsplit(".", 1)[-1]
            if leaf not in _NP_RANDOM_OK:
                yield self.finding(
                    module, node,
                    f"{name} uses numpy's global RNG; construct "
                    "numpy.random.default_rng(seed) and pass it down",
                )

    def _check_seedless(self, module, node, aliases) -> Iterator[Finding]:
        name = canonical_name(node.func, aliases)
        if name is None:
            return
        leaf = name.rsplit(".", 1)[-1]
        seedable = (
            name in ("random.Random", "numpy.random.RandomState")
            or (name.startswith("numpy.random.") and leaf == "default_rng")
        )
        if seedable and not node.args and not node.keywords:
            yield self.finding(
                module, node,
                f"{name}() without a seed is entropy-seeded; pass an "
                "explicit seed so runs are reproducible",
            )

    def _check_import(self, module, node) -> Iterator[Finding]:
        if node.level != 0 or node.module not in ("random", "numpy.random"):
            return
        ok = _RANDOM_OK if node.module == "random" else _NP_RANDOM_OK
        for alias in node.names:
            if alias.name != "*" and alias.name not in ok:
                yield self.finding(
                    module, node,
                    f"from {node.module} import {alias.name} binds the "
                    "global RNG; import the seedable class instead",
                )


@register_rule
class UnstableSortRule(Rule):
    """``argsort``/``np.sort`` without ``kind=\"stable\"`` in solver code."""

    name = "det-unstable-sort"
    family = "determinism"
    description = (
        "numpy argsort/sort without kind=\"stable\" — ties are the norm "
        "on weight keys, and the default introsort breaks them "
        "platform-dependently"
    )
    packages = SOLVER_PACKAGES + ("repro.dist",)

    def check(self, module, project) -> Iterator[Finding]:
        aliases = project.cached(
            f"aliases:{module.rel_path}", lambda: alias_map(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, aliases) or ""
            leaf = name.rsplit(".", 1)[-1]
            is_np_sort = name in ("numpy.sort", "numpy.argsort", "numpy.lexsort")
            is_method = (
                isinstance(node.func, ast.Attribute)
                and leaf in ("argsort",)
                and not is_np_sort
            )
            if not (is_np_sort or is_method):
                continue
            if leaf == "lexsort":
                continue  # lexsort is stable by definition
            kind = next(
                (kw.value for kw in node.keywords if kw.arg == "kind"), None
            )
            if not (
                isinstance(kind, ast.Constant) and kind.value == "stable"
            ):
                yield self.finding(
                    module, node,
                    f"{leaf}() without kind=\"stable\": equal keys (weight "
                    "ties) get platform-dependent order; pass "
                    "kind=\"stable\"",
                )


#: Wall-clock reads that must never feed result objects on solver paths.
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
})


@register_rule
class WallClockRule(Rule):
    """Wall-clock reads in solver code (results must be input-determined)."""

    name = "det-wallclock"
    family = "determinism"
    description = (
        "time.time()/datetime.now() in solver code; use "
        "time.monotonic()/perf_counter() for durations and keep "
        "timestamps out of result objects"
    )
    # All of repro, minus the one package whose *job* is wall-clock
    # observation: repro.obs stamps span start times with time.time() so
    # multi-process trace trees align on a shared epoch.  Spans never
    # feed back into solver results, so determinism is untouched.
    packages = ("repro",)
    exempt_packages = ("repro.obs",)

    def check(self, module, project) -> Iterator[Finding]:
        aliases = project.cached(
            f"aliases:{module.rel_path}", lambda: alias_map(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, aliases)
            if name in _WALLCLOCK:
                func = enclosing_function(module, node)
                where = f" in {func.name}()" if func is not None else ""
                yield self.finding(
                    module, node,
                    f"wall-clock read {name}(){where}: solver outputs "
                    "must be functions of their inputs; use "
                    "time.monotonic()/time.perf_counter() for durations",
                )
