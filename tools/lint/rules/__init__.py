"""The in-tree rule set; importing this package registers every rule."""

from tools.lint.rules import (  # noqa: F401  (registration side effects)
    asyncio_safety,
    consistency,
    determinism,
    exception_contract,
    hygiene,
    typing_core,
)
