"""The serve exception contract: handlers surface structured errors only.

``docs/ARCHITECTURE.md`` promises that everything crossing the HTTP
boundary is structured JSON — never a traceback.  The request-handling
modules therefore may only *raise* :class:`~repro.serve.protocol
.ProtocolError` (re-raising and construction-time config errors aside);
anything else would reach clients as an opaque ``internal-error`` and
lose the machine-readable ``code``/``field`` contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import call_name, enclosing_function
from tools.lint.findings import Finding
from tools.lint.registry import Rule, register_rule

#: Exception names handlers may raise: the structured protocol error.
ALLOWED_RAISES = frozenset({"ProtocolError"})

#: Flow-control exceptions asyncio code legitimately re-raises.
ALLOWED_FLOW = frozenset({"CancelledError", "StopAsyncIteration", "KeyError"})


@register_rule
class ServeExceptionContractRule(Rule):
    """Request handlers raise ProtocolError, never bare exceptions."""

    name = "serve-exception-contract"
    family = "exception-contract"
    description = (
        "request-handler code in repro.serve.app / repro.serve.workers "
        "may only raise ProtocolError (construction-time __init__ "
        "validation excepted)"
    )
    packages = ("repro.serve.app", "repro.serve.workers")

    def check(self, module, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            if node.exc is None:
                continue  # bare re-raise keeps the original context
            func = enclosing_function(module, node)
            if func is not None and func.name.startswith("__"):
                continue  # constructor/config validation is pre-request
            name = self._raised_name(node.exc)
            if name is None:
                continue  # raising a bound variable: re-raise pattern
            if name in ALLOWED_RAISES or name in ALLOWED_FLOW:
                continue
            where = f" in {func.name}()" if func is not None else ""
            yield self.finding(
                module, node,
                f"raise {name}{where}: serve request handlers must "
                "surface structured ProtocolError(code=..., status=...) "
                "so clients never see an unstructured 500",
            )

    def _raised_name(self, exc: ast.AST) -> str | None:
        """The exception class name of a ``raise X(...)`` / ``raise X``."""
        if isinstance(exc, ast.Call):
            name = call_name(exc)
            return name.rsplit(".", 1)[-1] if name else None
        if isinstance(exc, (ast.Name, ast.Attribute)):
            # ``raise exc`` re-raising a caught variable is allowed; only
            # a class reference (CamelCase) counts as raising a new one.
            from tools.lint.astutil import dotted

            name = dotted(exc)
            if name is None:
                return None
            leaf = name.rsplit(".", 1)[-1]
            return leaf if leaf[:1].isupper() else None
        return None
