"""Asyncio-safety rules for the serving layer (and any future async code).

The serve event loop multiplexes every client over one thread: a single
blocking call stalls all in-flight requests, and a coroutine called
without ``await`` silently does nothing (the classic fire-and-forget
bug).  Both are invisible to the differential tests — they only show up
under latency load — so they are lint rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import alias_map, canonical_name, walk_scope
from tools.lint.findings import Finding
from tools.lint.registry import Rule, register_rule

#: Canonical dotted names of calls that block the event loop.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.request",
})

#: Bare builtins that block (file I/O must go through a thread executor).
BLOCKING_BUILTINS = frozenset({"open", "input"})


@register_rule
class BlockingCallRule(Rule):
    """Synchronous blocking calls inside ``async def``."""

    name = "async-blocking-call"
    family = "asyncio-safety"
    description = (
        "time.sleep / subprocess / sync socket or file I/O inside an "
        "async def stalls every request on the event loop"
    )

    def check(self, module, project) -> Iterator[Finding]:
        aliases = project.cached(
            f"aliases:{module.rel_path}", lambda: alias_map(module.tree)
        )
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in walk_scope(func):
                if not isinstance(node, ast.Call):
                    continue
                name = canonical_name(node.func, aliases)
                if name in BLOCKING_CALLS:
                    fix = (
                        "await asyncio.sleep(...)" if name == "time.sleep"
                        else "an executor (asyncio.to_thread / "
                        "run_in_executor) or an async equivalent"
                    )
                    yield self.finding(
                        module, node,
                        f"blocking call {name}() inside async def "
                        f"{func.name}(); use {fix}",
                    )
                elif name in BLOCKING_BUILTINS:
                    yield self.finding(
                        module, node,
                        f"blocking builtin {name}() inside async def "
                        f"{func.name}(); move the I/O to a thread "
                        "executor (asyncio.to_thread)",
                    )


def _async_defs(tree: ast.Module) -> tuple[set[str], dict[str, set[str]]]:
    """Top-level async function names and per-class async method names."""
    top: set[str] = set()
    methods: dict[str, set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.AsyncFunctionDef):
            top.add(node.name)
        elif isinstance(node, ast.ClassDef):
            methods[node.name] = {
                m.name
                for m in node.body
                if isinstance(m, ast.AsyncFunctionDef)
            }
    return top, methods


@register_rule
class UnawaitedCoroutineRule(Rule):
    """A same-module coroutine called as a bare statement (never awaited)."""

    name = "async-unawaited-coroutine"
    family = "asyncio-safety"
    description = (
        "calling an async def as a bare statement creates a coroutine "
        "and drops it; await it or wrap it in asyncio.create_task"
    )

    def check(self, module, project) -> Iterator[Finding]:
        top, methods = project.cached(
            f"asyncdefs:{module.rel_path}", lambda: _async_defs(module.tree)
        )
        if not top and not any(methods.values()):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
            ):
                continue
            call = node.value
            target: str | None = None
            if isinstance(call.func, ast.Name) and call.func.id in top:
                target = call.func.id
            elif (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == "self"
            ):
                cls = self._enclosing_class(module, node)
                if cls is not None and call.func.attr in methods.get(
                    cls.name, ()
                ):
                    target = f"self.{call.func.attr}"
            if target is not None:
                yield self.finding(
                    module, call,
                    f"coroutine {target}(...) is never awaited: the call "
                    "builds a coroutine object and discards it; await it "
                    "or schedule it with asyncio.create_task(...)",
                )

    def _enclosing_class(self, module, node) -> ast.ClassDef | None:
        for anc in module.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None
