"""Text and JSON reporters for a :class:`~tools.lint.engine.LintResult`."""

from __future__ import annotations

import json

from tools.lint.engine import LintResult
from tools.lint.registry import RULES, rule_families


def text_report(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: findings, then a one-line summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for finding in result.stale_baseline:
        lines.append(
            f"{finding.path}:{finding.line}: [baseline] stale baseline "
            f"entry for [{finding.rule}] {finding.message!r} — no clean "
            "run produces it; run `python -m tools.lint --update-baseline`"
        )
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed (inline `# lint: disable=...`):")
        lines.extend(f"  {f.render()}" for f in result.suppressed)
    if verbose and result.baselined:
        lines.append("")
        lines.append("baselined (tools/lint/baseline.json):")
        lines.extend(f"  {f.render()}" for f in result.baselined)
    lines.append("")
    verdict = "OK" if result.ok else "FAIL"
    lines.append(
        f"lint: {verdict} — {result.checked_modules} modules, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.stale_baseline)} stale baseline entr(ies)"
    )
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """Machine-readable report (stable key order, one JSON object)."""
    payload = {
        "ok": result.ok,
        "checked_modules": result.checked_modules,
        "findings": [f.payload() for f in result.findings],
        "suppressed": [f.payload() for f in result.suppressed],
        "baselined": [f.payload() for f in result.baselined],
        "stale_baseline": [f.payload() for f in result.stale_baseline],
        "rule_counts": dict(sorted(result.rule_counts.items())),
    }
    return json.dumps(payload, indent=2)


def rules_report() -> str:
    """The rule catalogue (``--list-rules``), grouped by family."""
    lines: list[str] = []
    for family, rules in sorted(rule_families().items()):
        lines.append(f"{family}:")
        for rule in rules:
            scope = (
                "all linted modules" if rule.packages is None
                else ", ".join(rule.packages)
            )
            lines.append(f"  {rule.name}  [{scope}]")
            lines.append(f"      {rule.description}")
    lines.append("")
    lines.append(f"{len(RULES)} rules registered")
    return "\n".join(lines)
