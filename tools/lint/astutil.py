"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "alias_map",
    "call_name",
    "canonical_name",
    "dotted",
    "enclosing_function",
    "first_str_arg",
    "is_str",
    "str_value",
    "walk_scope",
]


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted callee name of a call, else ``None``."""
    return dotted(node.func)


def is_str(node: ast.AST) -> bool:
    """Whether the node is a string literal."""
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def str_value(node: ast.AST) -> str | None:
    """The literal string value, else ``None``."""
    if is_str(node):
        return node.value  # type: ignore[union-attr]
    return None


def first_str_arg(call: ast.Call) -> str | None:
    """The first positional argument when it is a string literal."""
    if call.args:
        return str_value(call.args[0])
    return None


def alias_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted import path for a module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as r`` maps ``r -> numpy.random``; ``import numpy.random``
    maps ``numpy -> numpy`` (the chain is already canonical).  Feed the
    result to :func:`canonical_name` to normalize attribute chains.
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    out[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The import-resolved dotted name of a Name/Attribute chain.

    ``np.random.shuffle`` with ``np -> numpy`` becomes
    ``numpy.random.shuffle``; unresolvable heads pass through verbatim so
    plain local chains still compare usefully.
    """
    chain = dotted(node)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def enclosing_function(
    module, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The nearest function definition containing ``node`` (if any)."""
    for anc in module.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def walk_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
