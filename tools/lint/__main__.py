"""``python -m tools.lint`` — run the static-analysis gate."""

import sys

from tools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
