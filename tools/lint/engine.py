"""The lint engine: file collection, suppressions, baseline, rule driving.

The engine parses every file once into a :class:`ModuleInfo` (AST with
parent links, comment directives) and bundles them into a
:class:`Project` so cross-file rules (capability strings vs the registry,
error codes vs the protocol table, CLI commands vs the docs) see the
whole repository while per-file rules stay simple.  Suppression comments
and the checked-in baseline are applied *after* rules run, so a clean run
always knows the complete finding set — that is what makes
``--update-baseline`` reproducible byte for byte.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from tools.lint.findings import Finding
from tools.lint.registry import RULES

__all__ = [
    "LintResult",
    "ModuleInfo",
    "Project",
    "SuppressionComment",
    "lint_paths",
    "load_baseline",
    "load_project",
    "repo_root",
    "write_baseline",
]

#: Directories never collected when walking a lint root.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}

#: Directive comment shape (anchored at the comment start, so prose
#: *mentioning* the syntax mid-comment is not parsed as a directive).
_DIRECTIVE = re.compile(r"^#\s*lint:\s*(?P<body>.*)$")
_DISABLE = re.compile(
    r"^(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\- ]+?)"
    r"\s*(?:--\s*(?P<reason>.*))?$"
)
_MODULE = re.compile(r"^module\s*=\s*(?P<dotted>[A-Za-z0-9_.]+)$")


@dataclass(frozen=True)
class SuppressionComment:
    """One parsed ``# lint: disable[-file]=...`` comment."""

    line: int
    file_level: bool
    rules: tuple[str, ...]
    reason: str | None


class ModuleInfo:
    """One parsed source file: AST, parent links, comment directives."""

    def __init__(self, abs_path: str, rel_path: str, source: str) -> None:
        self.abs_path = abs_path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel_path)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.suppressions: list[SuppressionComment] = []
        self._dotted_override: str | None = None
        self._parse_directives()
        self.dotted = self._dotted_override or _dotted_name(rel_path)

    # ------------------------------------------------------------------

    def _parse_directives(self) -> None:
        """Extract ``# lint:`` comments via tokenize (never from strings)."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught worse
            comments = []
        for line, text in comments:
            match = _DIRECTIVE.match(text)
            if not match:
                continue
            body = match.group("body").strip()
            mod = _MODULE.match(body)
            if mod:
                self._dotted_override = mod.group("dotted")
                continue
            dis = _DISABLE.match(body)
            if dis:
                names = tuple(
                    r.strip() for r in dis.group("rules").split(",") if r.strip()
                )
                self.suppressions.append(SuppressionComment(
                    line=line,
                    file_level=dis.group("kind") == "disable-file",
                    rules=names,
                    reason=dis.group("reason"),
                ))
            else:
                # Malformed directive: surface it as an (unsuppressible
                # by itself) parse marker the lint-suppression rule flags.
                self.suppressions.append(SuppressionComment(
                    line=line, file_level=False, rules=(), reason=None,
                ))

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (``None`` for the module root)."""
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a suppression comment covers this finding."""
        for sup in self.suppressions:
            if finding.rule not in sup.rules:
                continue
            if sup.file_level or sup.line == finding.line:
                return True
        return False


def _dotted_name(rel_path: str) -> str:
    """Repo-relative path -> dotted module name (``src/`` stripped)."""
    path = rel_path.replace(os.sep, "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


class Project:
    """Every parsed module plus the docs text cross-file rules consult."""

    def __init__(
        self, modules: list[ModuleInfo], docs: dict[str, str] | None = None
    ) -> None:
        self.modules = modules
        self.by_dotted = {m.dotted: m for m in modules}
        #: doc-file rel_path -> text (README + docs/*.md by default).
        self.docs = docs or {}
        self._caches: dict[str, object] = {}

    def cached(self, key: str, build):
        """Memoize one cross-file fact for the run (rules share scans)."""
        if key not in self._caches:
            self._caches[key] = build()
        return self._caches[key]

    def docs_text(self) -> str:
        """All doc file contents concatenated (presence checks)."""
        return "\n".join(self.docs[k] for k in sorted(self.docs))


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------


def repo_root() -> str:
    """The repository root (two levels above this file)."""
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))


#: Default lint roots, repo-relative.  ``tests``/``benchmarks`` are out of
#: scope (seeded randomness and asserts are the point there); fixture
#: snippets are linted explicitly by the test suite instead.
DEFAULT_ROOTS = ("src/repro", "tools")

#: Default documentation set consulted by consistency rules.
DEFAULT_DOCS = ("README.md", "docs/ARCHITECTURE.md")

#: The committed baseline location.
BASELINE_PATH = os.path.join("tools", "lint", "baseline.json")


def _collect_files(root: str, paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for entry in paths:
        target = entry if os.path.isabs(entry) else os.path.join(root, entry)
        if os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                out.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif os.path.exists(target):
            out.append(target)
        else:
            raise FileNotFoundError(f"lint path does not exist: {entry}")
    return sorted(dict.fromkeys(out))


def load_project(
    paths: Iterable[str] | None = None,
    root: str | None = None,
    docs: Iterable[str] | None = None,
) -> Project:
    """Parse the lint targets (and docs) into a :class:`Project`."""
    root = root or repo_root()
    files = _collect_files(root, paths or DEFAULT_ROOTS)
    modules = []
    for abs_path in files:
        rel = os.path.relpath(abs_path, root).replace(os.sep, "/")
        with open(abs_path, encoding="utf-8") as fh:
            modules.append(ModuleInfo(abs_path, rel, fh.read()))
    doc_map: dict[str, str] = {}
    for entry in (DEFAULT_DOCS if docs is None else docs):
        target = entry if os.path.isabs(entry) else os.path.join(root, entry)
        if os.path.exists(target):
            rel = os.path.relpath(target, root).replace(os.sep, "/")
            with open(target, encoding="utf-8") as fh:
                doc_map[rel] = fh.read()
    return Project(modules, doc_map)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def load_baseline(path: str) -> list[Finding]:
    """Read the committed baseline file (missing file = empty baseline)."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    return [
        Finding(
            path=item["path"],
            line=item["line"],
            col=item.get("col", 1),
            rule=item["rule"],
            message=item["message"],
        )
        for item in payload.get("findings", [])
    ]


def render_baseline(findings: Iterable[Finding]) -> str:
    """The canonical baseline file content for a finding set."""
    payload = {
        "comment": (
            "Grandfathered lint findings. Regenerate with "
            "`python -m tools.lint --update-baseline`; the committed file "
            "must equal a clean run's output (tests/test_lint_rules.py)."
        ),
        "version": 1,
        "findings": [f.payload() for f in sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Write the canonical baseline file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_baseline(findings))


# ---------------------------------------------------------------------------
# the run
# ---------------------------------------------------------------------------


@dataclass
class LintResult:
    """The outcome of one lint run (reporters consume this)."""

    #: Unsuppressed, unbaselined findings — the ones that fail the gate.
    findings: list[Finding]
    #: Findings silenced by suppression comments.
    suppressed: list[Finding]
    #: Findings matched (and absorbed) by the baseline.
    baselined: list[Finding]
    #: Baseline entries no clean run produces any more (fix the file).
    stale_baseline: list[Finding]
    #: Modules examined.
    checked_modules: int = 0
    #: Per-rule counts over *all* raw findings (observability).
    rule_counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The gate: no live findings and no stale baseline entries."""
        return not self.findings and not self.stale_baseline

    def all_raw(self) -> list[Finding]:
        """Every finding before suppression/baseline (baseline updates)."""
        return sorted(self.findings + self.baselined)


def run_rules(project: Project) -> list[Finding]:
    """Run every registered rule over every module; sorted raw findings."""
    findings: list[Finding] = []
    for module in project.modules:
        for name in sorted(RULES):
            rule = RULES[name]
            if rule.applies_to(module):
                findings.extend(rule.check(module, project))
    return sorted(findings)


def lint_paths(
    paths: Iterable[str] | None = None,
    root: str | None = None,
    docs: Iterable[str] | None = None,
    baseline_path: str | None = None,
    use_baseline: bool = True,
) -> LintResult:
    """Collect, parse, run rules, then apply suppressions and baseline.

    ``baseline_path`` defaults to the committed
    ``tools/lint/baseline.json`` under ``root``; pass
    ``use_baseline=False`` to see the full finding set.
    """
    # Importing the rule set here (not at module import) keeps the engine
    # importable by rule modules without a cycle.
    import tools.lint.rules  # noqa: F401  (registers the in-tree rules)

    root = root or repo_root()
    project = load_project(paths, root=root, docs=docs)
    raw = run_rules(project)

    suppressed: list[Finding] = []
    live: list[Finding] = []
    by_path = {m.rel_path: m for m in project.modules}
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            suppressed.append(finding)
        else:
            live.append(finding)

    baselined: list[Finding] = []
    stale: list[Finding] = []
    if use_baseline:
        if baseline_path is None:
            baseline_path = os.path.join(root, BASELINE_PATH)
        entries = {f.key() for f in load_baseline(baseline_path)}
        matched: set = set()
        remaining = []
        for finding in live:
            if finding.key() in entries:
                matched.add(finding.key())
                baselined.append(finding)
            else:
                remaining.append(finding)
        live = remaining
        stale = [
            f for f in load_baseline(baseline_path) if f.key() not in matched
        ]

    counts: dict[str, int] = {}
    for finding in raw:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return LintResult(
        findings=live,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        checked_modules=len(project.modules),
        rule_counts=counts,
    )
