"""Documentation gate: docs/ link resolution + docstring presence.

Two checks, both dependency-free so they run in any environment:

* :func:`check_links` — every relative markdown link/image in ``docs/*.md``
  and ``README.md`` must resolve to an existing file in the repo;
* :func:`check_docstrings` — every module, public class, and public
  function/method under the given source trees must carry a docstring
  (the D100–D104 subset of pydocstyle, re-implemented here so the check
  also runs where pydocstyle is not installed; CI additionally runs
  ``python -m pydocstyle`` with the matching ``select`` list from
  ``pyproject.toml``).

Used by the CI ``docs`` job and by ``tests/test_docs.py``:

    python tools/check_docs.py            # check the repo, exit 1 on issues
"""

from __future__ import annotations

import ast
import os
import re
import sys

#: Source trees held to the docstring requirement.
DOCSTRING_TREES = (
    "src/repro/sim",
    "src/repro/core",
    "src/repro/fast",
    "src/repro/dist",
    "src/repro/runtime",
    "src/repro/serve",
    "src/repro/graphs",
    "src/repro/baselines",
    "src/repro/decomp",
    "src/repro/trees",
)

#: Markdown files whose links must resolve.
LINKED_DOCS = ("README.md", "docs")

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def check_links(root: str | None = None) -> list[str]:
    """Return one error string per broken relative link in the doc set."""
    root = root or _repo_root()
    errors: list[str] = []
    files: list[str] = []
    for entry in LINKED_DOCS:
        path = os.path.join(root, entry)
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, f)
                for f in sorted(os.listdir(path))
                if f.endswith(".md")
            )
        elif os.path.exists(path):
            files.append(path)
    for md in files:
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as fh:
            text = fh.read()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith(("#", "mailto:")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(base, rel))
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(md, root)}: broken link -> {target}"
                )
    return errors


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def check_docstrings(
    root: str | None = None, trees: tuple[str, ...] = DOCSTRING_TREES
) -> list[str]:
    """Return one error per missing module/class/function docstring."""
    root = root or _repo_root()
    errors: list[str] = []
    for tree in trees:
        top = os.path.join(root, tree)
        for dirpath, _, filenames in os.walk(top):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8") as fh:
                    node = ast.parse(fh.read(), filename=rel)
                if not ast.get_docstring(node):
                    errors.append(f"{rel}: missing module docstring")
                for sub in ast.walk(node):
                    if isinstance(sub, ast.ClassDef) and _is_public(sub.name):
                        if not ast.get_docstring(sub):
                            errors.append(
                                f"{rel}: class {sub.name} missing docstring"
                            )
                    elif isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(sub.name):
                        if not ast.get_docstring(sub):
                            errors.append(
                                f"{rel}:{sub.lineno}: def {sub.name} "
                                "missing docstring"
                            )
    return errors


def main() -> int:
    """Run both checks and report; non-zero exit on any finding."""
    errors = check_links() + check_docstrings()
    for err in errors:
        print(f"check_docs: {err}")
    if errors:
        print(f"check_docs: {len(errors)} issue(s)")
        return 1
    print("check_docs: OK (links resolve, docstrings present)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
